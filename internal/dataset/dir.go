package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// On-disk dataset layout: one SJPG file per sample plus manifest.json.
// datagen writes it; sophon-server can serve straight from it.

// ManifestEntry describes one stored sample.
type ManifestEntry struct {
	ID      uint32 `json:"id"`
	File    string `json:"file"`
	Width   int    `json:"width"`
	Height  int    `json:"height"`
	Bytes   int    `json:"bytes"`
	Quality int    `json:"quality"`
}

// Manifest is the dataset directory's index.
type Manifest struct {
	Name       string          `json:"name"`
	Seed       uint64          `json:"seed"`
	N          int             `json:"n"`
	TotalBytes int64           `json:"total_bytes"`
	Samples    []ManifestEntry `json:"samples"`
}

// ManifestFile is the index file name inside a dataset directory.
const ManifestFile = "manifest.json"

// WriteDir materializes an image set into dir: numbered .sjpg files plus a
// manifest. It creates dir if needed.
func WriteDir(s *ImageSet, dir string, seed uint64) (*Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: mkdir: %w", err)
	}
	m := &Manifest{Name: s.Name(), Seed: seed, N: s.N()}
	for i := 0; i < s.N(); i++ {
		raw, err := s.Raw(i)
		if err != nil {
			return nil, err
		}
		meta, err := s.Meta(i)
		if err != nil {
			return nil, err
		}
		file := fmt.Sprintf("%06d.sjpg", i)
		if err := os.WriteFile(filepath.Join(dir, file), raw, 0o644); err != nil {
			return nil, fmt.Errorf("dataset: write sample %d: %w", i, err)
		}
		m.TotalBytes += int64(len(raw))
		m.Samples = append(m.Samples, ManifestEntry{
			ID: uint32(i), File: file, Width: meta.W, Height: meta.H,
			Bytes: len(raw), Quality: meta.Quality,
		})
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), blob, 0o644); err != nil {
		return nil, fmt.Errorf("dataset: write manifest: %w", err)
	}
	return m, nil
}

// DirSet serves samples from an on-disk dataset directory.
type DirSet struct {
	dir      string
	manifest Manifest
}

// LoadDir opens a dataset directory written by WriteDir.
func LoadDir(dir string) (*DirSet, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("dataset: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("dataset: parse manifest: %w", err)
	}
	if m.N <= 0 || len(m.Samples) != m.N {
		return nil, fmt.Errorf("dataset: manifest claims %d samples, lists %d", m.N, len(m.Samples))
	}
	for i, s := range m.Samples {
		if int(s.ID) != i {
			return nil, fmt.Errorf("dataset: manifest sample %d has id %d", i, s.ID)
		}
		if s.File == "" || filepath.Base(s.File) != s.File {
			return nil, fmt.Errorf("dataset: manifest sample %d has unsafe file %q", i, s.File)
		}
	}
	return &DirSet{dir: dir, manifest: m}, nil
}

// Name returns the dataset name.
func (s *DirSet) Name() string { return s.manifest.Name }

// N returns the number of samples.
func (s *DirSet) N() int { return s.manifest.N }

// TotalBytes returns the summed stored size from the manifest.
func (s *DirSet) TotalBytes() int64 { return s.manifest.TotalBytes }

// Raw reads sample i's stored bytes from disk.
func (s *DirSet) Raw(i int) ([]byte, error) {
	if i < 0 || i >= s.manifest.N {
		return nil, fmt.Errorf("dataset: sample %d out of range [0, %d)", i, s.manifest.N)
	}
	entry := s.manifest.Samples[i]
	data, err := os.ReadFile(filepath.Join(s.dir, entry.File))
	if err != nil {
		return nil, fmt.Errorf("dataset: read sample %d: %w", i, err)
	}
	if entry.Bytes != 0 && len(data) != entry.Bytes {
		return nil, fmt.Errorf("dataset: sample %d is %d bytes, manifest says %d", i, len(data), entry.Bytes)
	}
	if len(data) == 0 {
		return nil, errors.New("dataset: empty sample file")
	}
	return data, nil
}

// Materialize loads every sample into memory — what the storage server does
// at startup, mirroring the paper's RAM-cached datasets.
func (s *DirSet) Materialize() ([][]byte, error) {
	out := make([][]byte, s.N())
	for i := range out {
		raw, err := s.Raw(i)
		if err != nil {
			return nil, err
		}
		out[i] = raw
	}
	return out, nil
}
