package dataset

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/imaging"
)

// ImageMeta describes one real-tier sample: enough to regenerate its bytes
// deterministically.
type ImageMeta struct {
	ID      uint32
	W, H    int
	Detail  float64
	Seed    uint64
	Quality int
}

// ImageSet is the real-tier dataset: deterministic synthetic photos encoded
// with the SJPG codec. Raw regenerates a sample's stored bytes on demand;
// Materialize renders the whole set (what the storage server does when it
// caches the dataset in memory, as in the paper's setup).
type ImageSet struct {
	name  string
	metas []ImageMeta
}

// SyntheticOptions configures NewSyntheticImageSet.
type SyntheticOptions struct {
	Name    string
	N       int
	Seed    uint64
	MinDim  int // smallest image side; 0 means 80
	MaxDim  int // largest image side; 0 means 480
	Quality int // SJPG quality; 0 means imaging.DefaultQuality
}

// NewSyntheticImageSet builds a deterministic image set: dimensions uniform
// in [MinDim, MaxDim], texture detail uniform in [0, 1] (driving raw-size
// variance the way photo content does).
func NewSyntheticImageSet(opts SyntheticOptions) (*ImageSet, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("dataset: image set needs N > 0, got %d", opts.N)
	}
	if opts.MinDim == 0 {
		opts.MinDim = 80
	}
	if opts.MaxDim == 0 {
		opts.MaxDim = 480
	}
	if opts.MinDim < 8 || opts.MaxDim < opts.MinDim {
		return nil, fmt.Errorf("dataset: bad dim range [%d, %d]", opts.MinDim, opts.MaxDim)
	}
	if opts.Quality == 0 {
		opts.Quality = imaging.DefaultQuality
	}
	if opts.Quality < 1 || opts.Quality > 100 {
		return nil, fmt.Errorf("dataset: bad quality %d", opts.Quality)
	}
	if opts.Name == "" {
		opts.Name = "synthetic"
	}
	rng := rand.New(rand.NewPCG(opts.Seed, opts.Seed^0xda94_2042))
	metas := make([]ImageMeta, opts.N)
	span := opts.MaxDim - opts.MinDim + 1
	for i := range metas {
		metas[i] = ImageMeta{
			ID:      uint32(i),
			W:       opts.MinDim + rng.IntN(span),
			H:       opts.MinDim + rng.IntN(span),
			Detail:  rng.Float64(),
			Seed:    rng.Uint64(),
			Quality: opts.Quality,
		}
	}
	return &ImageSet{name: opts.Name, metas: metas}, nil
}

// Name returns the set name.
func (s *ImageSet) Name() string { return s.name }

// N returns the number of samples.
func (s *ImageSet) N() int { return len(s.metas) }

// Meta returns the descriptor of sample i.
func (s *ImageSet) Meta(i int) (ImageMeta, error) {
	if i < 0 || i >= len(s.metas) {
		return ImageMeta{}, fmt.Errorf("dataset: sample %d out of range [0, %d)", i, len(s.metas))
	}
	return s.metas[i], nil
}

// Image renders sample i's pixels.
func (s *ImageSet) Image(i int) (*imaging.Image, error) {
	m, err := s.Meta(i)
	if err != nil {
		return nil, err
	}
	return imaging.Synthesize(imaging.SynthParams{W: m.W, H: m.H, Detail: m.Detail, Seed: m.Seed})
}

// Raw renders and encodes sample i — the bytes as stored on the storage
// server.
func (s *ImageSet) Raw(i int) ([]byte, error) {
	m, err := s.Meta(i)
	if err != nil {
		return nil, err
	}
	im, err := s.Image(i)
	if err != nil {
		return nil, err
	}
	return imaging.Encode(im, m.Quality)
}

// Materialize renders every sample's stored bytes, keyed by sample index.
func (s *ImageSet) Materialize() ([][]byte, error) {
	out := make([][]byte, len(s.metas))
	for i := range s.metas {
		raw, err := s.Raw(i)
		if err != nil {
			return nil, fmt.Errorf("dataset: materialize sample %d: %w", i, err)
		}
		out[i] = raw
	}
	return out, nil
}
