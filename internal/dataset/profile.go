package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/pipeline"
)

// Profile is a statistical description of a dataset, fitted to the paper's
// reported subset statistics. GenerateTrace draws per-sample records from
// it.
type Profile struct {
	Name string
	N    int

	// Raw (compressed) object size in bytes: lognormal(RawMu, RawSigma)
	// over ln-bytes, clamped to [MinRaw, MaxRaw].
	RawMu    float64
	RawSigma float64
	MinRaw   int64
	MaxRaw   int64

	// Compression ratio (3·pixels / rawBytes): lognormal over ln-ratio.
	CompressMu    float64
	CompressSigma float64

	// CropSize is the RandomResizedCrop output side (224 in the paper).
	CropSize int

	// TimeJitterSigma is the lognormal sigma multiplying each sample's op
	// times, modeling per-image preprocessing variance.
	TimeJitterSigma float64

	// Cost is the per-op CPU cost law.
	Cost CostModel
}

// OpenImages12G models the paper's 12 GB OpenImages subset: 40 000 images,
// mean raw size ≈ 300 KB, 76 % of samples larger than the 224²-crop
// artifact (and therefore shrinking during preprocessing).
func OpenImages12G() Profile {
	return Profile{
		Name:  "openimages-12g",
		N:     40000,
		RawMu: 12.380, RawSigma: 0.682,
		MinRaw: 4 << 10, MaxRaw: 8 << 20,
		CompressMu: math.Log(12), CompressSigma: 0.20,
		CropSize:        224,
		TimeJitterSigma: 0.10,
		Cost:            DefaultCostModel(),
	}
}

// ImageNet11G models the paper's 11 GB ImageNet subset: 91 000 images, mean
// raw size ≈ 121 KB, only 26 % of samples larger than the crop artifact.
func ImageNet11G() Profile {
	return Profile{
		Name:  "imagenet-11g",
		N:     91000,
		RawMu: 11.384, RawSigma: 0.800,
		MinRaw: 2 << 10, MaxRaw: 4 << 20,
		CompressMu: math.Log(12), CompressSigma: 0.20,
		CropSize:        224,
		TimeJitterSigma: 0.10,
		Cost:            DefaultCostModel(),
	}
}

// ScaledTo returns the profile with the sample count replaced by n, keeping
// every distribution intact. Useful for fast tests and scaled-down benches.
func (p Profile) ScaledTo(n int) Profile {
	p.N = n
	return p
}

// GenerateTrace draws a deterministic trace of p.N sample records.
func GenerateTrace(p Profile, seed uint64) (*Trace, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("dataset: profile %q has N=%d", p.Name, p.N)
	}
	if p.CropSize <= 0 {
		return nil, fmt.Errorf("dataset: profile %q has crop size %d", p.Name, p.CropSize)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x5bf0_3635))
	tr := &Trace{Name: p.Name, Records: make([]Record, p.N)}
	outPixels := int64(p.CropSize) * int64(p.CropSize)
	cropWire := int64(pipeline.ImageWireSize(p.CropSize, p.CropSize))
	tensorWire := int64(pipeline.TensorWireSize(3, p.CropSize, p.CropSize))

	for i := 0; i < p.N; i++ {
		raw := int64(math.Exp(p.RawMu + p.RawSigma*rng.NormFloat64()))
		if raw < p.MinRaw {
			raw = p.MinRaw
		}
		if raw > p.MaxRaw {
			raw = p.MaxRaw
		}
		ratio := math.Exp(p.CompressMu + p.CompressSigma*rng.NormFloat64())
		if ratio < 1.5 {
			ratio = 1.5
		}
		pixels := int64(float64(raw) * ratio / 3)
		if pixels < 64 {
			pixels = 64
		}
		aspect := 0.75 + rng.Float64()*(4.0/3.0-0.75)
		w := int(math.Round(math.Sqrt(float64(pixels) * aspect)))
		h := int(math.Round(math.Sqrt(float64(pixels) / aspect)))
		if w < 8 {
			w = 8
		}
		if h < 8 {
			h = 8
		}
		srcPixels := int64(w) * int64(h)

		jitter := math.Exp(p.TimeJitterSigma * rng.NormFloat64())
		rec := Record{
			ID:      uint32(i),
			RawSize: raw,
			Width:   w,
			Height:  h,
			OpTimes: p.Cost.OpTimes(raw, srcPixels, outPixels, jitter),
		}
		rec.StageSizes = [StageCount]int64{
			int64(pipeline.RawWireSize(int(raw))),
			int64(pipeline.ImageWireSize(w, h)),
			cropWire,
			cropWire,
			tensorWire,
			tensorWire,
		}
		tr.Records[i] = rec
	}
	return tr, nil
}
