package dataset

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pipeline"
)

func TestRecordMinStageAndSaving(t *testing.T) {
	r := Record{StageSizes: [StageCount]int64{500, 900, 150, 150, 600, 600}}
	if got := r.MinStage(); got != 2 {
		t.Fatalf("MinStage = %d, want 2", got)
	}
	if got := r.Saving(2); got != 350 {
		t.Fatalf("Saving(2) = %d", got)
	}
	if got := r.Saving(4); got != -100 {
		t.Fatalf("Saving(4) = %d", got)
	}
	raw := Record{StageSizes: [StageCount]int64{100, 900, 150, 150, 600, 600}}
	if got := raw.MinStage(); got != 0 {
		t.Fatalf("raw-min MinStage = %d", got)
	}
}

func TestRecordPrefixTime(t *testing.T) {
	r := Record{OpTimes: [OpCount]time.Duration{1, 2, 3, 4, 5}}
	if got := r.PrefixTime(0); got != 0 {
		t.Fatalf("PrefixTime(0) = %v", got)
	}
	if got := r.PrefixTime(2); got != 3 {
		t.Fatalf("PrefixTime(2) = %v", got)
	}
	if got := r.TotalTime(); got != 15 {
		t.Fatalf("TotalTime = %v", got)
	}
	// PrefixTime beyond OpCount clamps.
	if got := r.PrefixTime(99); got != 15 {
		t.Fatalf("PrefixTime(99) = %v", got)
	}
}

func TestTraceAggregates(t *testing.T) {
	tr := &Trace{Records: []Record{
		{StageSizes: [StageCount]int64{10, 1, 1, 1, 1, 1}, OpTimes: [OpCount]time.Duration{1, 1, 1, 1, 1}},
		{StageSizes: [StageCount]int64{20, 30, 30, 30, 30, 30}, OpTimes: [OpCount]time.Duration{2, 2, 2, 2, 2}},
	}}
	if got := tr.TotalRawBytes(); got != 30 {
		t.Fatalf("TotalRawBytes = %d", got)
	}
	s, err := tr.TotalStageBytes(1)
	if err != nil || s != 31 {
		t.Fatalf("TotalStageBytes(1) = %d, %v", s, err)
	}
	if _, err := tr.TotalStageBytes(StageCount); err == nil {
		t.Fatal("TotalStageBytes accepted out-of-range stage")
	}
	if got := tr.TotalPreprocessCPU(); got != 15 {
		t.Fatalf("TotalPreprocessCPU = %v", got)
	}
	h := tr.MinStageHistogram()
	if h[1] != 1 || h[0] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	if got := tr.FractionBenefiting(); got != 0.5 {
		t.Fatalf("FractionBenefiting = %v", got)
	}
	empty := &Trace{}
	if empty.FractionBenefiting() != 0 {
		t.Fatal("empty trace fraction != 0")
	}
}

func TestTraceStats(t *testing.T) {
	empty := &Trace{}
	if s := empty.Stats(); s.N != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
	tr, err := GenerateTrace(OpenImages12G().ScaledTo(1000), 2)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	// Stats sums stored object sizes; Trace.TotalRawBytes counts the wire
	// form (one framing byte per sample).
	if s.N != 1000 || s.TotalRawBytes != tr.TotalRawBytes()-int64(s.N) {
		t.Fatalf("stats totals: %+v", s)
	}
	if s.MeanRawBytes < 250e3 || s.MeanRawBytes > 350e3 {
		t.Fatalf("mean raw %v", s.MeanRawBytes)
	}
	// Lognormal: median below mean, max above both.
	if !(float64(s.MedianRawBytes) < s.MeanRawBytes && s.MaxRawBytes > s.MedianRawBytes) {
		t.Fatalf("ordering: median=%d mean=%.0f max=%d", s.MedianRawBytes, s.MeanRawBytes, s.MaxRawBytes)
	}
	if s.MeanPreprocess <= 0 {
		t.Fatal("no preprocess time")
	}
	str := s.String()
	for _, want := range []string{"n=1000", "benefiting"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	p := OpenImages12G().ScaledTo(200)
	a, err := GenerateTrace(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs across same-seed generations", i)
		}
	}
	c, _ := GenerateTrace(p, 2)
	same := true
	for i := range a.Records {
		if a.Records[i] != c.Records[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateTraceValidates(t *testing.T) {
	p := OpenImages12G()
	p.N = 0
	if _, err := GenerateTrace(p, 1); err == nil {
		t.Fatal("accepted N=0")
	}
	p = OpenImages12G()
	p.CropSize = 0
	if _, err := GenerateTrace(p, 1); err == nil {
		t.Fatal("accepted CropSize=0")
	}
}

// TestOpenImagesProfileMatchesPaper checks the headline statistics the
// paper reports for its OpenImages subset: ~12 GB total at 40 k samples
// (mean ≈ 300 KB) and ~76 % of samples benefiting from preprocessing.
func TestOpenImagesProfileMatchesPaper(t *testing.T) {
	tr, err := GenerateTrace(OpenImages12G().ScaledTo(20000), 42)
	if err != nil {
		t.Fatal(err)
	}
	meanRaw := float64(tr.TotalRawBytes()) / float64(tr.N())
	if meanRaw < 270e3 || meanRaw > 330e3 {
		t.Fatalf("mean raw size = %.0f, want ~300 KB", meanRaw)
	}
	frac := tr.FractionBenefiting()
	if frac < 0.72 || frac > 0.80 {
		t.Fatalf("fraction benefiting = %.3f, want ~0.76", frac)
	}
}

// TestImageNetProfileMatchesPaper checks ~11 GB at 91 k samples (mean
// ≈ 121 KB) and ~26 % benefiting.
func TestImageNetProfileMatchesPaper(t *testing.T) {
	tr, err := GenerateTrace(ImageNet11G().ScaledTo(20000), 43)
	if err != nil {
		t.Fatal(err)
	}
	meanRaw := float64(tr.TotalRawBytes()) / float64(tr.N())
	if meanRaw < 105e3 || meanRaw > 140e3 {
		t.Fatalf("mean raw size = %.0f, want ~121 KB", meanRaw)
	}
	frac := tr.FractionBenefiting()
	if frac < 0.22 || frac > 0.30 {
		t.Fatalf("fraction benefiting = %.3f, want ~0.26", frac)
	}
}

// TestTraceStageSizeLaw verifies generated stage sizes follow the artifact
// wire-size law used by the real pipeline.
func TestTraceStageSizeLaw(t *testing.T) {
	tr, err := GenerateTrace(OpenImages12G().ScaledTo(500), 7)
	if err != nil {
		t.Fatal(err)
	}
	cropWire := int64(pipeline.ImageWireSize(224, 224))
	tensorWire := int64(pipeline.TensorWireSize(3, 224, 224))
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.StageSizes[0] != int64(pipeline.RawWireSize(int(r.RawSize))) {
			t.Fatalf("record %d stage0 %d != raw law", i, r.StageSizes[0])
		}
		if r.StageSizes[1] != int64(pipeline.ImageWireSize(r.Width, r.Height)) {
			t.Fatalf("record %d stage1 %d != image law for %dx%d", i, r.StageSizes[1], r.Width, r.Height)
		}
		if r.StageSizes[2] != cropWire || r.StageSizes[3] != cropWire {
			t.Fatalf("record %d crop stages %d/%d", i, r.StageSizes[2], r.StageSizes[3])
		}
		if r.StageSizes[4] != tensorWire || r.StageSizes[5] != tensorWire {
			t.Fatalf("record %d tensor stages %d/%d", i, r.StageSizes[4], r.StageSizes[5])
		}
		for _, ot := range r.OpTimes {
			if ot <= 0 {
				t.Fatalf("record %d has non-positive op time %v", i, ot)
			}
		}
	}
}

// TestTracePreprocessBudget pins the calibrated CPU budget: mean full
// preprocessing ~10-25 ms/sample, prefix (Decode+Crop) dominating it.
func TestTracePreprocessBudget(t *testing.T) {
	tr, err := GenerateTrace(OpenImages12G().ScaledTo(2000), 9)
	if err != nil {
		t.Fatal(err)
	}
	mean := tr.TotalPreprocessCPU() / time.Duration(tr.N())
	if mean < 8*time.Millisecond || mean > 30*time.Millisecond {
		t.Fatalf("mean preprocess = %v, want 8-30ms", mean)
	}
	var prefix, total time.Duration
	for i := range tr.Records {
		prefix += tr.Records[i].PrefixTime(2)
		total += tr.Records[i].TotalTime()
	}
	ratio := float64(prefix) / float64(total)
	if ratio < 0.7 || ratio > 0.98 {
		t.Fatalf("decode+crop share = %.2f of total, want dominant", ratio)
	}
}

func TestCostModelScaled(t *testing.T) {
	m := DefaultCostModel()
	s := m.Scaled(2)
	if s.DecodePerPixel != 2*m.DecodePerPixel || s.NormalizePerPix != 2*m.NormalizePerPix {
		t.Fatal("Scaled did not scale all constants")
	}
	a := m.OpTimes(1000, 10000, 50176, 1)
	b := s.OpTimes(1000, 10000, 50176, 1)
	for i := range a {
		diff := math.Abs(float64(b[i]) - 2*float64(a[i]))
		if diff > 2 { // rounding slack in ns
			t.Fatalf("op %d: scaled %v vs base %v", i, b[i], a[i])
		}
	}
}

func TestSyntheticImageSetValidates(t *testing.T) {
	if _, err := NewSyntheticImageSet(SyntheticOptions{N: 0}); err == nil {
		t.Fatal("accepted N=0")
	}
	if _, err := NewSyntheticImageSet(SyntheticOptions{N: 1, MinDim: 100, MaxDim: 50}); err == nil {
		t.Fatal("accepted inverted dims")
	}
	if _, err := NewSyntheticImageSet(SyntheticOptions{N: 1, Quality: 300}); err == nil {
		t.Fatal("accepted bad quality")
	}
}

func TestSyntheticImageSetDeterministicRaw(t *testing.T) {
	opts := SyntheticOptions{Name: "t", N: 5, Seed: 3, MinDim: 40, MaxDim: 80}
	a, err := NewSyntheticImageSet(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSyntheticImageSet(opts)
	for i := 0; i < a.N(); i++ {
		ra, err := a.Raw(i)
		if err != nil {
			t.Fatal(err)
		}
		rb, _ := b.Raw(i)
		if string(ra) != string(rb) {
			t.Fatalf("sample %d bytes differ across identical sets", i)
		}
	}
	if a.Name() != "t" || a.N() != 5 {
		t.Fatalf("Name/N = %q/%d", a.Name(), a.N())
	}
}

func TestSyntheticImageSetBoundsChecks(t *testing.T) {
	s, err := NewSyntheticImageSet(SyntheticOptions{N: 2, Seed: 1, MinDim: 20, MaxDim: 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Raw(-1); err == nil {
		t.Fatal("Raw(-1) accepted")
	}
	if _, err := s.Raw(2); err == nil {
		t.Fatal("Raw(N) accepted")
	}
	if _, err := s.Meta(5); err == nil {
		t.Fatal("Meta out of range accepted")
	}
}

func TestSyntheticImageSetMaterializeAndDecode(t *testing.T) {
	s, err := NewSyntheticImageSet(SyntheticOptions{N: 4, Seed: 11, MinDim: 24, MaxDim: 64})
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 4 {
		t.Fatalf("materialized %d blobs", len(blobs))
	}
	p := pipeline.DefaultStandard()
	for i, raw := range blobs {
		out, err := p.Run(raw, pipeline.Seed{Job: 1, Epoch: 1, Sample: uint64(i)})
		if err != nil {
			t.Fatalf("sample %d failed pipeline: %v", i, err)
		}
		if out.Kind != pipeline.KindTensor {
			t.Fatalf("sample %d output kind %s", i, out.Kind)
		}
	}
}

// Property: every image set sample respects its declared dimension range
// and decodes to its metadata dims.
func TestImageSetDimsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s, err := NewSyntheticImageSet(SyntheticOptions{N: 3, Seed: seed, MinDim: 16, MaxDim: 48})
		if err != nil {
			return false
		}
		for i := 0; i < s.N(); i++ {
			m, err := s.Meta(i)
			if err != nil || m.W < 16 || m.W > 48 || m.H < 16 || m.H > 48 {
				return false
			}
			im, err := s.Image(i)
			if err != nil || im.W != m.W || im.H != m.H {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
