// Package dataset provides the training data substrate in two tiers. The
// real tier (ImageSet) synthesizes actual encodable images and is used by
// the live networked trainer, examples, and integration tests. The model
// tier (Trace) generates per-sample records — raw size, decoded dimensions,
// per-stage wire sizes, per-op CPU times — drawn from distributions fitted
// to the statistics the paper reports for its OpenImages 12 GB and ImageNet
// 11 GB subsets, and is used to regenerate the paper's figures at full
// 40k–91k sample scale where synthesizing real pixels would be prohibitive.
// DESIGN.md documents this substitution.
package dataset

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// StageCount is the number of pipeline stages tracked per sample: stage 0 is
// the raw artifact, stages 1..5 follow Decode, RandomResizedCrop,
// RandomHorizontalFlip, ToTensor, Normalize.
const StageCount = 6

// OpCount is the number of preprocessing ops.
const OpCount = StageCount - 1

// Record holds everything the decision engine needs to know about one
// sample. Sizes are artifact wire sizes in bytes; times are single-core CPU
// costs.
type Record struct {
	ID         uint32
	RawSize    int64 // stored object size (stage-0 payload)
	Width      int   // decoded width in pixels
	Height     int   // decoded height in pixels
	StageSizes [StageCount]int64
	OpTimes    [OpCount]time.Duration
}

// MinStage returns the stage index with the smallest wire size, preferring
// the earliest stage on ties.
func (r *Record) MinStage() int {
	best := 0
	for i := 1; i < StageCount; i++ {
		if r.StageSizes[i] < r.StageSizes[best] {
			best = i
		}
	}
	return best
}

// Saving returns the traffic saved (in bytes) by shipping the stage-k
// artifact instead of the raw artifact; negative when stage k is larger.
func (r *Record) Saving(k int) int64 {
	return r.StageSizes[0] - r.StageSizes[k]
}

// PrefixTime returns the CPU time to execute ops [0, k) — the storage-side
// cost of offloading up to stage k.
func (r *Record) PrefixTime(k int) time.Duration {
	var t time.Duration
	for i := 0; i < k && i < OpCount; i++ {
		t += r.OpTimes[i]
	}
	return t
}

// TotalTime returns the full single-core preprocessing time of the sample.
func (r *Record) TotalTime() time.Duration { return r.PrefixTime(OpCount) }

// Trace is the model-tier dataset: a named collection of sample records.
type Trace struct {
	Name    string
	Records []Record
}

// ErrNoRecords reports an empty trace where samples were required.
var ErrNoRecords = errors.New("dataset: trace has no records")

// N returns the number of samples.
func (t *Trace) N() int { return len(t.Records) }

// TotalRawBytes sums the stage-0 wire sizes — the per-epoch traffic of a
// no-offloading run.
func (t *Trace) TotalRawBytes() int64 {
	var sum int64
	for i := range t.Records {
		sum += t.Records[i].StageSizes[0]
	}
	return sum
}

// TotalStageBytes sums the stage-k wire sizes — the per-epoch traffic when
// every sample ships its stage-k artifact.
func (t *Trace) TotalStageBytes(k int) (int64, error) {
	if k < 0 || k >= StageCount {
		return 0, fmt.Errorf("dataset: stage %d out of range", k)
	}
	var sum int64
	for i := range t.Records {
		sum += t.Records[i].StageSizes[k]
	}
	return sum, nil
}

// TotalPreprocessCPU sums full preprocessing time across samples (one core).
func (t *Trace) TotalPreprocessCPU() time.Duration {
	var sum time.Duration
	for i := range t.Records {
		sum += t.Records[i].TotalTime()
	}
	return sum
}

// MinStageHistogram counts samples by the stage at which they reach minimum
// wire size; index k of the result corresponds to stage k. This is the
// quantity behind the paper's Figure 1b.
func (t *Trace) MinStageHistogram() [StageCount]int {
	var h [StageCount]int
	for i := range t.Records {
		h[t.Records[i].MinStage()]++
	}
	return h
}

// FractionBenefiting returns the fraction of samples whose minimum wire size
// occurs after at least one preprocessing op (76 % for the paper's
// OpenImages subset, 26 % for ImageNet).
func (t *Trace) FractionBenefiting() float64 {
	if len(t.Records) == 0 {
		return 0
	}
	n := 0
	for i := range t.Records {
		if t.Records[i].MinStage() > 0 {
			n++
		}
	}
	return float64(n) / float64(len(t.Records))
}

// TraceStats summarizes a trace for reports and tooling.
type TraceStats struct {
	N               int
	TotalRawBytes   int64
	MeanRawBytes    float64
	MedianRawBytes  int64
	MaxRawBytes     int64
	Benefiting      float64
	MeanPreprocess  time.Duration // per-sample single-core CPU
	TotalPreprocess time.Duration
}

// Stats computes summary statistics over the trace.
func (t *Trace) Stats() TraceStats {
	s := TraceStats{N: t.N()}
	if s.N == 0 {
		return s
	}
	sizes := make([]int64, s.N)
	for i := range t.Records {
		r := &t.Records[i]
		sizes[i] = r.RawSize
		s.TotalRawBytes += r.RawSize
		if r.RawSize > s.MaxRawBytes {
			s.MaxRawBytes = r.RawSize
		}
		s.TotalPreprocess += r.TotalTime()
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	s.MedianRawBytes = sizes[s.N/2]
	s.MeanRawBytes = float64(s.TotalRawBytes) / float64(s.N)
	s.MeanPreprocess = s.TotalPreprocess / time.Duration(s.N)
	s.Benefiting = t.FractionBenefiting()
	return s
}

// String renders the stats on one line.
func (s TraceStats) String() string {
	return fmt.Sprintf("n=%d raw=%.2fGB mean=%.0fKB median=%.0fKB benefiting=%.1f%% preprocess=%.1fms/sample",
		s.N, float64(s.TotalRawBytes)/1e9, s.MeanRawBytes/1e3,
		float64(s.MedianRawBytes)/1e3, 100*s.Benefiting,
		float64(s.MeanPreprocess.Microseconds())/1000)
}
