package dataset

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeTestDir(t *testing.T) (string, *ImageSet) {
	t.Helper()
	set, err := NewSyntheticImageSet(SyntheticOptions{Name: "disk", N: 5, Seed: 4, MinDim: 24, MaxDim: 64})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m, err := WriteDir(set, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 5 || m.TotalBytes == 0 || m.Name != "disk" {
		t.Fatalf("manifest: %+v", m)
	}
	return dir, set
}

func TestWriteLoadDirRoundTrip(t *testing.T) {
	dir, set := writeTestDir(t)
	ds, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 5 || ds.Name() != "disk" || ds.TotalBytes() == 0 {
		t.Fatalf("loaded facts: %d %q %d", ds.N(), ds.Name(), ds.TotalBytes())
	}
	for i := 0; i < 5; i++ {
		fromDisk, err := ds.Raw(i)
		if err != nil {
			t.Fatal(err)
		}
		fromSet, err := set.Raw(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fromDisk, fromSet) {
			t.Fatalf("sample %d bytes differ on disk", i)
		}
	}
	blobs, err := ds.Materialize()
	if err != nil || len(blobs) != 5 {
		t.Fatalf("materialize: %d, %v", len(blobs), err)
	}
}

func TestDirSetBounds(t *testing.T) {
	dir, _ := writeTestDir(t)
	ds, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Raw(-1); err == nil {
		t.Fatal("Raw(-1) accepted")
	}
	if _, err := ds.Raw(5); err == nil {
		t.Fatal("Raw(N) accepted")
	}
}

func TestLoadDirRejectsBadManifests(t *testing.T) {
	dir, _ := writeTestDir(t)
	manifestPath := filepath.Join(dir, ManifestFile)
	good, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(good, &m); err != nil {
		t.Fatal(err)
	}

	rewrite := func(mut func(*Manifest)) {
		t.Helper()
		bad := m
		bad.Samples = append([]ManifestEntry(nil), m.Samples...)
		mut(&bad)
		blob, _ := json.Marshal(bad)
		if err := os.WriteFile(manifestPath, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	rewrite(func(b *Manifest) { b.N = 99 })
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("accepted wrong N")
	}
	rewrite(func(b *Manifest) { b.Samples[2].ID = 7 })
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("accepted out-of-order ids")
	}
	rewrite(func(b *Manifest) { b.Samples[0].File = "../escape.sjpg" })
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("accepted path traversal")
	}
	if err := os.WriteFile(manifestPath, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("accepted corrupt JSON")
	}
	os.Remove(manifestPath)
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("accepted missing manifest")
	}
}

func TestDirSetDetectsTruncatedFiles(t *testing.T) {
	dir, _ := writeTestDir(t)
	ds, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate one sample file; Raw must notice the size mismatch.
	path := filepath.Join(dir, "000001.sjpg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Raw(1); err == nil {
		t.Fatal("accepted truncated sample file")
	}
}
