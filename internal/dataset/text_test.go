package dataset

import "testing"

func TestGenerateTextTraceValidates(t *testing.T) {
	p := TextShards1G()
	p.N = 0
	if _, err := GenerateTextTrace(p, 1); err == nil {
		t.Fatal("accepted N=0")
	}
}

func TestTextTraceNeverShrinks(t *testing.T) {
	tr, err := GenerateTextTrace(TextShards1G(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 4000 {
		t.Fatalf("N = %d", tr.N())
	}
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.MinStage() != 0 {
			t.Fatalf("shard %d min stage %d, want raw", i, r.MinStage())
		}
		for k := 1; k < StageCount; k++ {
			if r.StageSizes[k] != r.StageSizes[0] {
				t.Fatalf("shard %d stage %d size %d != raw %d", i, k, r.StageSizes[k], r.StageSizes[0])
			}
		}
		if r.TotalTime() <= 0 {
			t.Fatalf("shard %d has no preprocessing cost", i)
		}
	}
	if tr.FractionBenefiting() != 0 {
		t.Fatalf("benefiting fraction %v on a flat trace", tr.FractionBenefiting())
	}
}

func TestTextTraceDeterministic(t *testing.T) {
	a, _ := GenerateTextTrace(TextShards1G(), 9)
	b, _ := GenerateTextTrace(TextShards1G(), 9)
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c, _ := GenerateTextTrace(TextShards1G(), 10)
	if a.Records[0] == c.Records[0] && a.Records[1] == c.Records[1] {
		t.Fatal("different seeds produced identical shards")
	}
}
