package dataset

import "fmt"

// Label renders sample i's metadata record — the per-sample stream a real
// loader ships alongside the pixels (class label, source id, geometry). The
// record is deterministic in the set's seeds, structured, and low-entropy:
// exactly the stream family a trained dictionary codec targets. The
// progressive materialization in internal/compressor embeds it as each
// container's sidecar.
func (s *ImageSet) Label(i int) ([]byte, error) {
	m, err := s.Meta(i)
	if err != nil {
		return nil, err
	}
	// A synthetic 1000-class label derived from the sample's own seed, so
	// replays agree byte for byte.
	class := m.Seed % 1000
	return []byte(fmt.Sprintf("sample=%d class=%03d w=%d h=%d q=%d detail=%.3f src=%s",
		m.ID, class, m.W, m.H, m.Quality, m.Detail, s.name)), nil
}
