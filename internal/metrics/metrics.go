// Package metrics provides lightweight, concurrency-safe counters, gauges,
// and histograms used by the storage server, trainer, and evaluation
// harness. A Registry groups named instruments and renders a stable text
// snapshot for reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta. Negative deltas are ignored so the
// counter stays monotone.
func (c *Counter) Add(delta int64) {
	if delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64.
type Gauge struct {
	v atomic.Int64
}

// Set stores val.
func (g *Gauge) Set(val int64) { g.v.Store(val) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates float64 observations and reports count, sum,
// min/max, mean, and approximate quantiles from fixed log-spaced buckets.
type Histogram struct {
	mu    sync.Mutex
	count int64
	sum   float64
	min   float64
	max   float64
	// buckets[i] counts observations in [bound(i-1), bound(i)).
	buckets [histBuckets]int64
}

const (
	histBuckets = 128
	histBase    = 1e-9 // smallest resolvable observation
	histGrowth  = 1.35 // bucket upper bounds grow geometrically
)

func bucketFor(v float64) int {
	if v <= histBase {
		return 0
	}
	idx := int(math.Log(v/histBase) / math.Log(histGrowth))
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

func bucketUpper(i int) float64 {
	return histBase * math.Pow(histGrowth, float64(i+1))
}

// Observe records one sample. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketFor(v)]++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 with none.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation, or 0 with none.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) using
// the bucket upper bound containing the rank; exact min/max are returned at
// the extremes.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i]
		if seen > rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// Registry holds named instruments. The zero value is unusable; use
// NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures a point-in-time view of every instrument, sorted by
// name, suitable for logging or report generation.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramStats
}

// HistogramStats summarizes a histogram at snapshot time.
type HistogramStats struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	Mean  float64
	P50   float64
	P99   float64
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramStats, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = HistogramStats{
			Count: h.Count(),
			Sum:   h.Sum(),
			Min:   h.Min(),
			Max:   h.Max(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.5),
			P99:   h.Quantile(0.99),
		}
	}
	return s
}

// String renders the snapshot as stable, sorted text.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "counter %s = %d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "gauge %s = %d\n", k, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "hist %s count=%d mean=%.4g p50=%.4g p99=%.4g min=%.4g max=%.4g\n",
			k, h.Count, h.Mean, h.P50, h.P99, h.Min, h.Max)
	}
	return b.String()
}
