package metrics

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(-3)
	c.Add(0)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10 (negatives ignored)", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 10 {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Mean() != 2.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 4 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	var h Histogram
	h.Observe(math.NaN())
	h.Observe(1)
	if h.Count() != 1 {
		t.Fatalf("count = %d after NaN, want 1", h.Count())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v, want exact min", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v, want exact max", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 30 || p50 > 90 {
		t.Fatalf("p50 = %v, outside plausible band", p50)
	}
}

// Property: for any set of positive observations, every quantile lies within
// [min, max] and quantiles are monotone in q.
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, r := range raw {
			h.Observe(float64(r%1e6) + 0.5)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < h.Min() || v > h.Max() {
				return false
			}
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		h.Observe(rng.Float64()*1000 + 1)
	}
	p50 := h.Quantile(0.5)
	// Log-spaced buckets with growth 1.35 bound relative error by ~35%.
	if p50 < 500/1.5 || p50 > 500*1.5 {
		t.Fatalf("p50 = %v, want near 500", p50)
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not memoized")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge not memoized")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Histogram not memoized")
	}
}

func TestRegistrySnapshotAndString(t *testing.T) {
	r := NewRegistry()
	r.Counter("bytes").Add(1024)
	r.Gauge("inflight").Set(3)
	r.Histogram("latency").Observe(0.25)
	s := r.Snapshot()
	if s.Counters["bytes"] != 1024 {
		t.Fatalf("snapshot counter = %d", s.Counters["bytes"])
	}
	if s.Gauges["inflight"] != 3 {
		t.Fatalf("snapshot gauge = %d", s.Gauges["inflight"])
	}
	if s.Histograms["latency"].Count != 1 {
		t.Fatalf("snapshot hist count = %d", s.Histograms["latency"].Count)
	}
	out := s.String()
	for _, want := range []string{"counter bytes = 1024", "gauge inflight = 3", "hist latency count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot string missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(float64(j))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
}
