package gpu

import (
	"testing"
	"time"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"alexnet", "resnet18", "resnet50"} {
		m, err := ByName(name)
		if err != nil || m.Name != name || !m.Valid() {
			t.Fatalf("ByName(%q) = %+v, %v", name, m, err)
		}
	}
	if _, err := ByName("gpt4"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRelativeSpeeds(t *testing.T) {
	// AlexNet is compute-light; ResNet50 is compute-heavy.
	if !(AlexNet.Throughput > ResNet18.Throughput && ResNet18.Throughput > ResNet50.Throughput) {
		t.Fatalf("throughput ordering broken: %v %v %v",
			AlexNet.Throughput, ResNet18.Throughput, ResNet50.Throughput)
	}
}

func TestBatchAndEpochTime(t *testing.T) {
	m := Model{Name: "m", Throughput: 100}
	if got := m.BatchTime(100); got != time.Second {
		t.Fatalf("BatchTime = %v", got)
	}
	if got := m.EpochTime(1000); got != 10*time.Second {
		t.Fatalf("EpochTime = %v", got)
	}
	if m.BatchTime(0) != 0 || m.EpochTime(-5) != 0 {
		t.Fatal("non-positive counts should cost nothing")
	}
	var invalid Model
	if invalid.BatchTime(10) != 0 || invalid.Valid() {
		t.Fatal("invalid model should cost nothing")
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(5*time.Second, 10*time.Second); got != 0.5 {
		t.Fatalf("Utilization = %v", got)
	}
	if Utilization(15*time.Second, 10*time.Second) != 1 {
		t.Fatal("utilization not clamped above")
	}
	if Utilization(-time.Second, 10*time.Second) != 0 {
		t.Fatal("utilization not clamped below")
	}
	if Utilization(time.Second, 0) != 0 {
		t.Fatal("zero epoch should give 0")
	}
}

// TestFigure1dRegime pins the calibration: with a 500 Mbps link and the
// OpenImages-like traffic (~300 KB/sample → ~208 samples/s), ResNet50 is
// compute-bound, ResNet18 ~30-40 % utilized, AlexNet < 15 %.
func TestFigure1dRegime(t *testing.T) {
	const linkSamplesPerSec = 62.5e6 / 300e3 // ≈208 img/s over the link
	fetchEpoch := time.Duration(40000 / linkSamplesPerSec * float64(time.Second))

	util := func(m Model) float64 {
		tg := m.EpochTime(40000)
		epoch := tg
		if fetchEpoch > epoch {
			epoch = fetchEpoch
		}
		return Utilization(tg, epoch)
	}
	if u := util(ResNet50); u < 0.9 {
		t.Fatalf("ResNet50 utilization %.2f, want ~1", u)
	}
	if u := util(ResNet18); u < 0.25 || u > 0.45 {
		t.Fatalf("ResNet18 utilization %.2f, want ~0.35", u)
	}
	if u := util(AlexNet); u > 0.15 {
		t.Fatalf("AlexNet utilization %.2f, want < 0.15", u)
	}
}
