// Package gpu models the training accelerator. The paper's results depend
// on GPU speed only through per-model training throughput (images/second),
// so a Model is a calibrated throughput plus batch semantics. The profiles
// reproduce the paper's Figure 1d regime: under a 500 Mbps link, ResNet50
// is compute-bound (near-full utilization), ResNet18 is ~35 % utilized, and
// AlexNet — the evaluation model — is heavily fetch-bound.
package gpu

import (
	"errors"
	"fmt"
	"time"
)

// Model is a neural network's training-speed profile on the reference GPU.
type Model struct {
	Name       string
	Throughput float64 // images per second at steady state
}

// Calibrated profiles (images/second on the paper's class of GPU).
var (
	AlexNet  = Model{Name: "alexnet", Throughput: 3000}
	ResNet18 = Model{Name: "resnet18", Throughput: 620}
	ResNet50 = Model{Name: "resnet50", Throughput: 210}
)

// Models lists the built-in profiles.
func Models() []Model { return []Model{AlexNet, ResNet18, ResNet50} }

// ErrUnknownModel reports a name with no registered profile.
var ErrUnknownModel = errors.New("gpu: unknown model")

// ByName resolves a built-in profile.
func ByName(name string) (Model, error) {
	for _, m := range Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
}

// Valid reports whether the model has a usable throughput.
func (m Model) Valid() bool { return m.Throughput > 0 }

// BatchTime returns the GPU busy time for one batch of the given size.
func (m Model) BatchTime(batchSize int) time.Duration {
	if batchSize <= 0 || !m.Valid() {
		return 0
	}
	return time.Duration(float64(batchSize) / m.Throughput * float64(time.Second))
}

// EpochTime returns the pure GPU compute time for n samples — the paper's
// T_G metric.
func (m Model) EpochTime(n int) time.Duration {
	if n <= 0 || !m.Valid() {
		return 0
	}
	return time.Duration(float64(n) / m.Throughput * float64(time.Second))
}

// Utilization is GPU busy time over total epoch time, clamped to [0, 1].
func Utilization(busy, epoch time.Duration) float64 {
	if epoch <= 0 {
		return 0
	}
	u := float64(busy) / float64(epoch)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}
