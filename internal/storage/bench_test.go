package storage

import (
	"testing"

	"repro/internal/pipeline"
)

func BenchmarkFetchRaw(b *testing.B) {
	st := testStore(b, 8)
	_, dial := startServer(b, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 2})
	c := dial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fetch(uint32(i%8), 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetchOffloadedPrefix(b *testing.B) {
	st := testStore(b, 8)
	_, dial := startServer(b, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 2})
	c := dial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fetch(uint32(i%8), 2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorPrefix(b *testing.B) {
	set := testImageSet(b, 1)
	raw, err := set.Raw(0)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewExecutor(pipeline.DefaultStandard(), 4, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunPrefix(raw, 2, pipeline.Seed{Job: 1, Epoch: 1, Sample: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
