package storage

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pipeline"
)

func BenchmarkFetchRaw(b *testing.B) {
	st := testStore(b, 8)
	_, dial := startServer(b, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 2})
	c := dial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Fetch(context.Background(), uint32(i%8), 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		res.Artifact.Release()
	}
}

func BenchmarkFetchOffloadedPrefix(b *testing.B) {
	st := testStore(b, 8)
	_, dial := startServer(b, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 2})
	c := dial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Fetch(context.Background(), uint32(i%8), 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		res.Artifact.Release()
	}
}

// BenchmarkTransport_Pipelined measures fetch throughput over a shaped
// 500 Mbps link (the paper's storage↔compute interconnect) as the in-flight
// window grows. Window 1 is the old lock-step transport — one request per
// round trip; larger windows keep the link and the server's cores busy
// simultaneously, which is the whole point of the multiplexed session.
// Offloaded fetches (split 2) make the server do real per-request CPU work,
// so pipelining overlaps preprocessing with transmission.
func BenchmarkTransport_Pipelined(b *testing.B) {
	for _, window := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			st := testStore(b, 16)
			// Slowdown 2 models the paper's weaker storage-node CPU: each
			// offloaded request costs ~2 ms of server CPU, comparable to
			// its ~2.4 ms transfer time, so there is real latency for
			// pipelining to hide.
			srv, err := NewServer(ServerConfig{
				Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 4, Slowdown: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Burst below one response size: the link cannot bank capacity
			// while the server computes, exactly like a real wire.
			bucket, err := netsim.NewTokenBucket(netsim.Mbps(500), 16<<10, nil)
			if err != nil {
				b.Fatal(err)
			}
			inner := netsim.NewPipeListener()
			go srv.Serve(netsim.ShapeListener(inner, bucket))
			b.Cleanup(func() { srv.Close() })

			conn, err := inner.Dial()
			if err != nil {
				b.Fatal(err)
			}
			c, err := NewClientWithOptions(conn, ClientOptions{
				JobID: 1, MaxInFlight: window, RequestTimeout: time.Minute,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })

			gate := make(chan struct{}, window)
			errCh := make(chan error, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gate <- struct{}{}
				go func(i int) {
					defer func() { <-gate }()
					res, err := c.Fetch(context.Background(), uint32(i%16), 2, 1)
					if err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
					res.Artifact.Release()
				}(i)
			}
			for k := 0; k < window; k++ { // drain: wait for stragglers
				gate <- struct{}{}
			}
			select {
			case err := <-errCh:
				b.Fatal(err)
			default:
			}
		})
	}
}

func BenchmarkExecutorPrefix(b *testing.B) {
	set := testImageSet(b, 1)
	raw, err := set.Raw(0)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewExecutor(pipeline.DefaultStandard(), 4, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		art, err := e.RunPrefix(raw, 2, pipeline.Seed{Job: 1, Epoch: 1, Sample: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		art.Release()
	}
}
