package storage

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/raceflag"
	"repro/internal/wire"
)

// TestPrefixServeSteadyStateAllocs pins the progressive fast path: answering
// a reduced-fidelity raw fetch slices the stored container and copies it
// into one pooled buffer — no decode, no re-encode. After warmup the whole
// handler should cost at most the response-struct allocation; the budget of
// 2 tolerates an occasional GC pool clear.
func TestPrefixServeSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector degrades sync.Pool caching; budgets not meaningful")
	}
	st := progressiveStore(t, 1)
	srv, err := NewServer(ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	req := &wire.Fetch{RequestID: 1, Sample: 0, Split: 0, Epoch: 1, Fidelity: 2}
	serve := func() {
		resp := srv.handleFetch(7, req)
		if resp.Status != wire.FetchOK || resp.Artifact == nil {
			t.Fatalf("prefix serve failed: %+v", resp)
		}
		wire.Recycle(resp)
	}
	for i := 0; i < 16; i++ {
		serve()
	}
	allocs := testing.AllocsPerRun(100, serve)
	if allocs > 2 {
		t.Fatalf("prefix serve allocates %.1f allocs/op at steady state, budget is 2", allocs)
	}
}
