package storage

import (
	"context"
	"errors"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/wire"
)

func TestNewPartialStoreValidation(t *testing.T) {
	if _, err := NewPartialStore("p", 0, map[uint32][]byte{0: {1}}); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := NewPartialStore("p", 4, nil); err == nil {
		t.Error("accepted empty ownership")
	}
	if _, err := NewPartialStore("p", 4, map[uint32][]byte{4: {1}}); err == nil {
		t.Error("accepted out-of-range sample")
	}
	if _, err := NewPartialStore("p", 4, map[uint32][]byte{1: {}}); err == nil {
		t.Error("accepted empty object")
	}
}

func TestPartialStoreFacts(t *testing.T) {
	st, err := NewPartialStore("p", 5, map[uint32][]byte{1: {0xA}, 3: {0xB, 0xC}})
	if err != nil {
		t.Fatal(err)
	}
	if st.N() != 5 {
		t.Errorf("N = %d, want the global 5", st.N())
	}
	if st.Owned() != 2 || st.TotalBytes() != 3 {
		t.Errorf("owned %d, bytes %d", st.Owned(), st.TotalBytes())
	}
	if b, err := st.Get(3); err != nil || len(b) != 2 {
		t.Errorf("Get(3) = %v, %v", b, err)
	}
	for _, id := range []uint32{0, 2, 4} {
		if _, err := st.Get(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%d) err = %v, want ErrNotFound", id, err)
		}
	}
	// Full stores own everything.
	full := testStore(t, 3)
	if full.Owned() != 3 {
		t.Errorf("full store owns %d of 3", full.Owned())
	}
}

// TestServerOnPartialStore: a shard server reports the GLOBAL dataset size
// in its handshake but serves only owned samples; unowned ones come back as
// the permanent not-found status, not a transport error.
func TestServerOnPartialStore(t *testing.T) {
	full := testStore(t, 4)
	own := map[uint32][]byte{}
	for _, id := range []uint32{1, 3} {
		b, err := full.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		own[id] = b
	}
	st, err := NewPartialStore("p", 4, own)
	if err != nil {
		t.Fatal(err)
	}
	_, dial := startServer(t, ServerConfig{
		Store:    st,
		Pipeline: pipeline.Standard(pipeline.StandardOptions{CropSize: 24, FlipP: -1}),
	})
	c := dial()
	if c.NumSamples() != 4 {
		t.Fatalf("handshake NumSamples = %d, want the global 4", c.NumSamples())
	}
	ctx := context.Background()
	res, err := c.Fetch(ctx, 3, 0, 1)
	if err != nil || res.Status != wire.FetchOK {
		t.Fatalf("owned fetch: %v, %v", res.Status, err)
	}
	if _, err := c.Fetch(ctx, 2, 0, 1); !errors.Is(err, ErrSampleMissing) {
		t.Fatalf("unowned fetch err = %v, want ErrSampleMissing", err)
	}
}
