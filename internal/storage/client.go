package storage

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
	"repro/internal/wire"
)

// PlanVersioner is implemented by clients that stamp outgoing fetch
// directives with the control plane's current plan version. Wrappers
// (reconnecting clients, sharded fan-outs, caches) forward SetPlanVersion to
// the sessions they own; callers discover support by type assertion so the
// StorageClient interfaces stay stable.
type PlanVersioner interface {
	// SetPlanVersion updates the version stamped on subsequent fetches.
	// Requests already in flight keep the version they were issued under —
	// mixed-version traffic during a plan swap is legal because fetches are
	// idempotent (augmentation seeds depend only on job, epoch, sample).
	SetPlanVersion(v uint32)
}

// Client defaults; override via ClientOptions.
const (
	// DefaultRequestTimeout bounds a single request round trip so a stalled
	// server cannot hang a caller forever.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultMaxInFlight caps concurrent requests pipelined on one session.
	DefaultMaxInFlight = 64
)

// Client-side errors.
var (
	ErrFetchFailed   = errors.New("storage: fetch failed on server")
	ErrSampleMissing = errors.New("storage: sample not found")
	ErrBadSplitReq   = errors.New("storage: server rejected split")
	ErrClientClosed  = errors.New("storage: client closed")
	// ErrRequestTimeout reports that the per-request deadline elapsed while
	// the caller's own context was still live. It is retryable: the session
	// may be poisoned but the request itself is idempotent.
	ErrRequestTimeout = errors.New("storage: request timed out")
)

// ClientOptions configures a session; the zero value of each field selects a
// sane default.
type ClientOptions struct {
	// JobID identifies the training job in the handshake.
	JobID uint64
	// Version overrides the protocol version sent in Hello (0 → wire.Version).
	// It exists so version negotiation can be exercised in tests.
	Version uint16
	// RequestTimeout bounds each request round trip (0 → DefaultRequestTimeout;
	// negative → no timeout).
	RequestTimeout time.Duration
	// MaxInFlight caps concurrent in-flight requests on the session
	// (0 → DefaultMaxInFlight).
	MaxInFlight int
}

// Client is a compute-node session to the storage server. One Client
// multiplexes many concurrent requests over a single connection: a writer
// goroutine serializes outgoing frames, a reader goroutine demultiplexes
// responses to waiting callers by RequestID, so responses may interleave in
// any order. All methods are safe for concurrent use.
type Client struct {
	conn    net.Conn
	ack     wire.HelloAck
	timeout time.Duration

	// planVersion is stamped onto every outgoing Fetch/FetchBatch; 0 means
	// unversioned. Atomic so a controller can swap plans while workers fetch.
	planVersion atomic.Uint32

	writeCh  chan wire.Message
	inflight chan struct{} // semaphore: MaxInFlight slots

	mu      sync.Mutex
	nextReq uint64
	pending map[uint64]chan wire.Message
	err     error // first session-fatal error
	closed  bool

	done      chan struct{}
	closeOnce sync.Once
}

// NewClient performs the handshake over an established connection.
func NewClient(conn net.Conn, jobID uint64) (*Client, error) {
	return NewClientWithOptions(conn, ClientOptions{JobID: jobID})
}

// NewClientWithVersion is NewClient with an explicit protocol version; it
// exists so version negotiation can be exercised.
func NewClientWithVersion(conn net.Conn, jobID uint64, version uint16) (*Client, error) {
	return NewClientWithOptions(conn, ClientOptions{JobID: jobID, Version: version})
}

// NewClientWithOptions performs the handshake and starts the session's
// writer and reader goroutines. On error the connection is closed.
func NewClientWithOptions(conn net.Conn, opts ClientOptions) (*Client, error) {
	version := opts.Version
	if version == 0 {
		version = wire.Version
	}
	if err := wire.Write(conn, &wire.Hello{Version: version, JobID: opts.JobID}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("storage: hello: %w", err)
	}
	msg, err := wire.Read(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("storage: hello ack: %w", err)
	}
	var ack wire.HelloAck
	switch m := msg.(type) {
	case *wire.HelloAck:
		ack = *m
	case *wire.ErrorResp:
		conn.Close()
		return nil, fmt.Errorf("storage: server rejected handshake: %s", m.Message)
	default:
		conn.Close()
		return nil, fmt.Errorf("storage: unexpected handshake reply %s", msg.Type())
	}

	timeout := opts.RequestTimeout
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	maxInFlight := opts.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	c := &Client{
		conn:     conn,
		ack:      ack,
		timeout:  timeout,
		writeCh:  make(chan wire.Message),
		inflight: make(chan struct{}, maxInFlight),
		pending:  make(map[uint64]chan wire.Message),
		done:     make(chan struct{}),
	}
	go c.writeLoop()
	go c.readLoop()
	return c, nil
}

// Dial connects over TCP and handshakes.
func Dial(addr string, jobID uint64) (*Client, error) {
	return DialWithOptions(addr, ClientOptions{JobID: jobID})
}

// DialWithOptions connects over TCP and handshakes with explicit options.
func DialWithOptions(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("storage: dial %s: %w", addr, err)
	}
	return NewClientWithOptions(conn, opts)
}

// DatasetName returns the server's dataset name.
func (c *Client) DatasetName() string { return c.ack.DatasetName }

// NumSamples returns the dataset size reported by the server.
func (c *Client) NumSamples() int { return int(c.ack.NumSamples) }

// SetPlanVersion implements PlanVersioner: subsequent fetches carry v.
func (c *Client) SetPlanVersion(v uint32) { c.planVersion.Store(v) }

// PlanVersion reports the version currently stamped on outgoing fetches.
func (c *Client) PlanVersion() uint32 { return c.planVersion.Load() }

// writeLoop is the single goroutine allowed to write frames after the
// handshake; it serializes concurrent requests onto the connection.
func (c *Client) writeLoop() {
	for {
		select {
		case msg := <-c.writeCh:
			if err := wire.Write(c.conn, msg); err != nil {
				c.fail(fmt.Errorf("storage: send: %w", err))
				return
			}
		case <-c.done:
			return
		}
	}
}

// readLoop is the single goroutine reading the connection; it routes each
// response to the waiting caller by RequestID. A response whose RequestID is
// no longer pending (the caller cancelled) is dropped silently — cancellation
// must not poison the session for other in-flight requests.
func (c *Client) readLoop() {
	for {
		msg, err := wire.Read(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("storage: read: %w", err))
			return
		}
		var reqID uint64
		switch m := msg.(type) {
		case *wire.FetchResp:
			reqID = m.RequestID
		case *wire.FetchBatchResp:
			reqID = m.RequestID
		case *wire.StatsResp:
			reqID = m.RequestID
		case *wire.RetryAfter:
			reqID = m.RequestID
		case *wire.ErrorResp:
			if m.RequestID == 0 {
				// Connection-level error: the server is tearing us down.
				c.fail(fmt.Errorf("storage: server error %d: %s", m.Code, m.Message))
				return
			}
			reqID = m.RequestID
		default:
			c.fail(fmt.Errorf("storage: unexpected message %s on session", msg.Type()))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[reqID]
		if ok {
			delete(c.pending, reqID)
		}
		c.mu.Unlock()
		if ok {
			ch <- msg // buffered(1); the reader never blocks here
		} else {
			// Dropped response (caller cancelled): reclaim its pooled buffers.
			wire.Recycle(msg)
		}
	}
}

// fail poisons the session with err and wakes every in-flight caller.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil && !c.closed {
		c.err = err
	}
	c.mu.Unlock()
	c.closeOnce.Do(func() {
		close(c.done)
		c.conn.Close()
	})
}

// sessionErr returns the error in-flight callers should observe.
func (c *Client) sessionErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrClientClosed
}

// roundTrip sends req (which must already carry RequestID id) and waits for
// the matching response, honoring ctx and the per-request timeout.
func (c *Client) roundTrip(ctx context.Context, id uint64, req wire.Message) (wire.Message, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}

	// Acquire an in-flight slot.
	select {
	case c.inflight <- struct{}{}:
	case <-ctx.Done():
		return nil, c.ctxErr(ctx)
	case <-c.done:
		return nil, c.sessionErr()
	}
	defer func() { <-c.inflight }()

	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	if c.closed || c.err != nil {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	c.pending[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}()

	select {
	case c.writeCh <- req:
	case <-ctx.Done():
		return nil, c.ctxErr(ctx)
	case <-c.done:
		return nil, c.sessionErr()
	}

	select {
	case msg := <-ch:
		if er, ok := msg.(*wire.ErrorResp); ok {
			return nil, fmt.Errorf("storage: server error %d: %s", er.Code, er.Message)
		}
		if ra, ok := msg.(*wire.RetryAfter); ok {
			// Admission-control shed: the request was rejected but the
			// session is healthy. Surface the typed error so a retry layer
			// can back off by the server's hint without reconnecting.
			return nil, &RetryAfterError{
				Delay:  time.Duration(ra.Millis) * time.Millisecond,
				Queued: int(ra.Queued),
			}
		}
		return msg, nil
	case <-ctx.Done():
		return nil, c.ctxErr(ctx)
	case <-c.done:
		return nil, c.sessionErr()
	}
}

// ctxErr maps a context error to the session's error vocabulary: a
// per-request timeout that fired while the caller's own context was still
// live becomes ErrRequestTimeout (retryable).
func (c *Client) ctxErr(ctx context.Context) error {
	err := ctx.Err()
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w after %v", ErrRequestTimeout, c.timeout)
	}
	return err
}

// reserveID allocates the next RequestID. IDs start at 1; 0 is reserved for
// connection-level messages.
func (c *Client) reserveID() uint64 {
	c.mu.Lock()
	c.nextReq++
	id := c.nextReq
	c.mu.Unlock()
	return id
}

// FetchResult carries one fetched sample plus its transfer accounting. In a
// batch, Status/Err report per-item failures (Err wraps ErrSampleMissing,
// ErrBadSplitReq, or ErrFetchFailed); Artifact is only valid when Err is nil.
type FetchResult struct {
	Sample    uint32
	Artifact  pipeline.Artifact
	Split     int
	Fidelity  int // refinement scans the directive asked to withhold
	WireBytes int // total response frame size over the link
	Status    wire.FetchStatus
	Err       error
}

// statusErr maps a non-OK fetch status to a client error, or nil for OK.
func statusErr(status wire.FetchStatus, sample uint32, split int) error {
	switch status {
	case wire.FetchOK:
		return nil
	case wire.FetchNotFound:
		return fmt.Errorf("%w: sample %d", ErrSampleMissing, sample)
	case wire.FetchBadSplit:
		return fmt.Errorf("%w: sample %d split %d", ErrBadSplitReq, sample, split)
	default:
		return fmt.Errorf("%w: sample %d split %d", ErrFetchFailed, sample, split)
	}
}

// Fetch requests sample id with the first split ops executed server-side,
// returning the decoded artifact. split is a packed directive (see
// PackDirective): a plain split value requests full fidelity, and a packed
// fidelity asks the server to withhold that many progressive refinement
// scans. Cancelling ctx unblocks the caller without disturbing other
// in-flight requests on the session.
func (c *Client) Fetch(ctx context.Context, sample uint32, split int, epoch uint64) (FetchResult, error) {
	split, fidelity := UnpackDirective(split)
	if split < 0 || split > 255 {
		return FetchResult{}, fmt.Errorf("storage: split %d out of range", split)
	}
	if fidelity < 0 || fidelity > 255 {
		return FetchResult{}, fmt.Errorf("storage: fidelity %d out of range", fidelity)
	}
	id := c.reserveID()
	req := &wire.Fetch{RequestID: id, Sample: sample, Split: uint8(split), Epoch: epoch,
		PlanVersion: c.planVersion.Load(), Fidelity: uint8(fidelity)}
	msg, err := c.roundTrip(ctx, id, req)
	if err != nil {
		return FetchResult{}, err
	}
	resp, ok := msg.(*wire.FetchResp)
	if !ok {
		wire.Recycle(msg)
		return FetchResult{}, fmt.Errorf("storage: unexpected reply %s", msg.Type())
	}
	if err := statusErr(resp.Status, sample, split); err != nil {
		wire.Recycle(resp)
		return FetchResult{Sample: sample, Status: resp.Status, Err: err}, err
	}
	// Frame size must be read before Recycle clears the artifact bytes;
	// DecodeArtifact copies the payload, so recycling afterwards is safe.
	frame := wire.FrameSize(resp)
	art, err := pipeline.DecodeArtifact(resp.Artifact)
	wire.Recycle(resp)
	if err != nil {
		return FetchResult{}, fmt.Errorf("storage: decode artifact: %w", err)
	}
	return FetchResult{
		Sample:    sample,
		Artifact:  art,
		Split:     int(resp.Split),
		Fidelity:  fidelity,
		WireBytes: frame,
		Status:    wire.FetchOK,
	}, nil
}

// FetchBatch requests up to wire.MaxBatchItems samples in one round trip.
// splits must be the same length as samples. Results come back in request
// order. Per-item failures do NOT fail the call: each FetchResult carries its
// own Status/Err so a retry layer can re-request only the failed samples. The
// returned error is non-nil only for validation or transport-level failures.
func (c *Client) FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]FetchResult, error) {
	if len(samples) == 0 {
		return nil, errors.New("storage: empty batch")
	}
	if len(samples) != len(splits) {
		return nil, fmt.Errorf("storage: %d samples but %d splits", len(samples), len(splits))
	}
	if len(samples) > wire.MaxBatchItems {
		return nil, fmt.Errorf("storage: batch of %d exceeds %d", len(samples), wire.MaxBatchItems)
	}
	items := make([]wire.FetchBatchItem, len(samples))
	for i := range samples {
		split, fidelity := UnpackDirective(splits[i])
		if split < 0 || split > 255 {
			return nil, fmt.Errorf("storage: split %d out of range", split)
		}
		if fidelity < 0 || fidelity > 255 {
			return nil, fmt.Errorf("storage: fidelity %d out of range", fidelity)
		}
		items[i] = wire.FetchBatchItem{Sample: samples[i], Split: uint8(split), Fidelity: uint8(fidelity)}
	}

	id := c.reserveID()
	req := &wire.FetchBatch{RequestID: id, Epoch: epoch, PlanVersion: c.planVersion.Load(), Items: items}
	msg, err := c.roundTrip(ctx, id, req)
	if err != nil {
		return nil, err
	}
	resp, ok := msg.(*wire.FetchBatchResp)
	if !ok {
		wire.Recycle(msg)
		return nil, fmt.Errorf("storage: unexpected batch reply %s", msg.Type())
	}
	// Every exit below is done with the response's pooled artifact buffers:
	// DecodeArtifact copies payloads out, so the whole batch is recycled here.
	defer wire.Recycle(resp)
	if len(resp.Items) != len(items) {
		return nil, fmt.Errorf("storage: batch returned %d items, want %d", len(resp.Items), len(items))
	}
	// Amortize the frame overhead across items by payload share.
	frame := wire.FrameSize(resp)
	var payload int
	for _, it := range resp.Items {
		payload += len(it.Artifact)
	}
	overhead := frame - payload
	out := make([]FetchResult, len(resp.Items))
	for i, it := range resp.Items {
		out[i] = FetchResult{Sample: it.Sample, Split: int(it.Split), Fidelity: int(items[i].Fidelity), Status: it.Status}
		if err := statusErr(it.Status, it.Sample, int(it.Split)); err != nil {
			out[i].Err = err
			continue
		}
		art, err := pipeline.DecodeArtifact(it.Artifact)
		if err != nil {
			out[i].Err = fmt.Errorf("storage: decode batch artifact %d: %w", it.Sample, err)
			continue
		}
		share := overhead / len(resp.Items)
		if i == 0 {
			share += overhead % len(resp.Items)
		}
		out[i].Artifact = art
		out[i].WireBytes = len(it.Artifact) + share
	}
	return out, nil
}

// Stats fetches the server's counters.
func (c *Client) Stats(ctx context.Context) (wire.StatsResp, error) {
	id := c.reserveID()
	msg, err := c.roundTrip(ctx, id, &wire.StatsReq{RequestID: id})
	if err != nil {
		return wire.StatsResp{}, err
	}
	resp, ok := msg.(*wire.StatsResp)
	if !ok {
		return wire.StatsResp{}, fmt.Errorf("storage: unexpected stats reply %s", msg.Type())
	}
	return *resp, nil
}

// Close shuts the session down; it is idempotent. In-flight requests
// unblock with ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.closeOnce.Do(func() {
		close(c.done)
		c.conn.Close()
	})
	return nil
}
