package storage

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/pipeline"
	"repro/internal/wire"
)

// Client is a compute-node connection to the storage server. A Client is
// safe for concurrent use; requests on one client serialize, so parallel
// loaders should each hold their own Client (mirroring one stream per
// worker).
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	nextReq uint64
	ack     wire.HelloAck
	closed  bool
}

// Client-side errors.
var (
	ErrFetchFailed   = errors.New("storage: fetch failed on server")
	ErrSampleMissing = errors.New("storage: sample not found")
	ErrBadSplitReq   = errors.New("storage: server rejected split")
	ErrClientClosed  = errors.New("storage: client closed")
)

// NewClient performs the handshake over an established connection.
func NewClient(conn net.Conn, jobID uint64) (*Client, error) {
	return NewClientWithVersion(conn, jobID, wire.Version)
}

// NewClientWithVersion is NewClient with an explicit protocol version; it
// exists so version negotiation can be exercised.
func NewClientWithVersion(conn net.Conn, jobID uint64, version uint16) (*Client, error) {
	if err := wire.Write(conn, &wire.Hello{Version: version, JobID: jobID}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("storage: hello: %w", err)
	}
	msg, err := wire.Read(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("storage: hello ack: %w", err)
	}
	switch m := msg.(type) {
	case *wire.HelloAck:
		return &Client{conn: conn, ack: *m}, nil
	case *wire.ErrorResp:
		conn.Close()
		return nil, fmt.Errorf("storage: server rejected handshake: %s", m.Message)
	default:
		conn.Close()
		return nil, fmt.Errorf("storage: unexpected handshake reply %s", msg.Type())
	}
}

// Dial connects over TCP and handshakes.
func Dial(addr string, jobID uint64) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("storage: dial %s: %w", addr, err)
	}
	return NewClient(conn, jobID)
}

// DatasetName returns the server's dataset name.
func (c *Client) DatasetName() string { return c.ack.DatasetName }

// NumSamples returns the dataset size reported by the server.
func (c *Client) NumSamples() int { return int(c.ack.NumSamples) }

// FetchResult carries a fetched artifact plus its transfer accounting.
type FetchResult struct {
	Artifact  pipeline.Artifact
	Split     int
	WireBytes int // total response frame size over the link
}

// Fetch requests sample id with the first split ops executed server-side,
// returning the decoded artifact.
func (c *Client) Fetch(sample uint32, split int, epoch uint64) (FetchResult, error) {
	if split < 0 || split > 255 {
		return FetchResult{}, fmt.Errorf("storage: split %d out of range", split)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return FetchResult{}, ErrClientClosed
	}
	c.nextReq++
	req := &wire.Fetch{RequestID: c.nextReq, Sample: sample, Split: uint8(split), Epoch: epoch}
	if err := wire.Write(c.conn, req); err != nil {
		return FetchResult{}, fmt.Errorf("storage: send fetch: %w", err)
	}
	msg, err := wire.Read(c.conn)
	if err != nil {
		return FetchResult{}, fmt.Errorf("storage: read fetch resp: %w", err)
	}
	resp, ok := msg.(*wire.FetchResp)
	if !ok {
		if er, isErr := msg.(*wire.ErrorResp); isErr {
			return FetchResult{}, fmt.Errorf("storage: server error %d: %s", er.Code, er.Message)
		}
		return FetchResult{}, fmt.Errorf("storage: unexpected reply %s", msg.Type())
	}
	if resp.RequestID != req.RequestID {
		return FetchResult{}, fmt.Errorf("storage: response for request %d, want %d", resp.RequestID, req.RequestID)
	}
	switch resp.Status {
	case wire.FetchOK:
	case wire.FetchNotFound:
		return FetchResult{}, fmt.Errorf("%w: sample %d", ErrSampleMissing, sample)
	case wire.FetchBadSplit:
		return FetchResult{}, fmt.Errorf("%w: split %d", ErrBadSplitReq, split)
	default:
		return FetchResult{}, fmt.Errorf("%w: sample %d split %d", ErrFetchFailed, sample, split)
	}
	art, err := pipeline.DecodeArtifact(resp.Artifact)
	if err != nil {
		return FetchResult{}, fmt.Errorf("storage: decode artifact: %w", err)
	}
	return FetchResult{
		Artifact:  art,
		Split:     int(resp.Split),
		WireBytes: wire.FrameSize(resp),
	}, nil
}

// FetchBatch requests up to wire.MaxBatchItems samples in one round trip.
// splits must be the same length as samples. Results come back in request
// order; a per-item failure fails the whole call (the trainer treats any
// missing sample as fatal anyway).
func (c *Client) FetchBatch(samples []uint32, splits []int, epoch uint64) ([]FetchResult, error) {
	if len(samples) == 0 {
		return nil, errors.New("storage: empty batch")
	}
	if len(samples) != len(splits) {
		return nil, fmt.Errorf("storage: %d samples but %d splits", len(samples), len(splits))
	}
	if len(samples) > wire.MaxBatchItems {
		return nil, fmt.Errorf("storage: batch of %d exceeds %d", len(samples), wire.MaxBatchItems)
	}
	items := make([]wire.FetchBatchItem, len(samples))
	for i := range samples {
		if splits[i] < 0 || splits[i] > 255 {
			return nil, fmt.Errorf("storage: split %d out of range", splits[i])
		}
		items[i] = wire.FetchBatchItem{Sample: samples[i], Split: uint8(splits[i])}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	c.nextReq++
	req := &wire.FetchBatch{RequestID: c.nextReq, Epoch: epoch, Items: items}
	if err := wire.Write(c.conn, req); err != nil {
		return nil, fmt.Errorf("storage: send batch: %w", err)
	}
	msg, err := wire.Read(c.conn)
	if err != nil {
		return nil, fmt.Errorf("storage: read batch resp: %w", err)
	}
	resp, ok := msg.(*wire.FetchBatchResp)
	if !ok {
		if er, isErr := msg.(*wire.ErrorResp); isErr {
			return nil, fmt.Errorf("storage: server error %d: %s", er.Code, er.Message)
		}
		return nil, fmt.Errorf("storage: unexpected batch reply %s", msg.Type())
	}
	if resp.RequestID != req.RequestID {
		return nil, fmt.Errorf("storage: batch response for request %d, want %d", resp.RequestID, req.RequestID)
	}
	if len(resp.Items) != len(items) {
		return nil, fmt.Errorf("storage: batch returned %d items, want %d", len(resp.Items), len(items))
	}
	// Amortize the frame overhead across items by payload share.
	frame := wire.FrameSize(resp)
	var payload int
	for _, it := range resp.Items {
		payload += len(it.Artifact)
	}
	overhead := frame - payload
	out := make([]FetchResult, len(resp.Items))
	for i, it := range resp.Items {
		switch it.Status {
		case wire.FetchOK:
		case wire.FetchNotFound:
			return nil, fmt.Errorf("%w: sample %d", ErrSampleMissing, it.Sample)
		case wire.FetchBadSplit:
			return nil, fmt.Errorf("%w: sample %d split %d", ErrBadSplitReq, it.Sample, it.Split)
		default:
			return nil, fmt.Errorf("%w: sample %d split %d", ErrFetchFailed, it.Sample, it.Split)
		}
		art, err := pipeline.DecodeArtifact(it.Artifact)
		if err != nil {
			return nil, fmt.Errorf("storage: decode batch artifact %d: %w", it.Sample, err)
		}
		share := overhead / len(resp.Items)
		if i == 0 {
			share += overhead % len(resp.Items)
		}
		out[i] = FetchResult{
			Artifact:  art,
			Split:     int(it.Split),
			WireBytes: len(it.Artifact) + share,
		}
	}
	return out, nil
}

// Stats fetches the server's counters.
func (c *Client) Stats() (wire.StatsResp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return wire.StatsResp{}, ErrClientClosed
	}
	if err := wire.Write(c.conn, &wire.StatsReq{}); err != nil {
		return wire.StatsResp{}, fmt.Errorf("storage: send stats req: %w", err)
	}
	msg, err := wire.Read(c.conn)
	if err != nil {
		return wire.StatsResp{}, fmt.Errorf("storage: read stats: %w", err)
	}
	resp, ok := msg.(*wire.StatsResp)
	if !ok {
		return wire.StatsResp{}, fmt.Errorf("storage: unexpected stats reply %s", msg.Type())
	}
	return *resp, nil
}

// Close shuts the connection; it is idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
