package storage

import (
	"context"
	"errors"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/wire"
)

func TestFetchBatchMatchesSingleFetches(t *testing.T) {
	set := testImageSet(t, 4)
	st, err := FromImageSet(set)
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.DefaultStandard()
	_, dial := startServer(t, ServerConfig{Store: st, Pipeline: p, Cores: 2})
	c := dial()

	samples := []uint32{0, 1, 2, 3}
	splits := []int{0, 1, 2, 5}
	const epoch = 4
	batch, err := c.FetchBatch(context.Background(), samples, splits, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 {
		t.Fatalf("batch returned %d results", len(batch))
	}
	for i := range samples {
		single, err := c.Fetch(context.Background(), samples[i], splits[i], epoch)
		if err != nil {
			t.Fatal(err)
		}
		if !batch[i].Artifact.Equal(single.Artifact) {
			t.Fatalf("item %d differs between batch and single fetch", i)
		}
		if batch[i].Split != splits[i] {
			t.Fatalf("item %d split %d", i, batch[i].Split)
		}
	}
}

func TestFetchBatchWireAccounting(t *testing.T) {
	st := testStore(t, 3)
	_, dial := startServer(t, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 1})
	c := dial()
	batch, err := c.FetchBatch(context.Background(), []uint32{0, 1, 2}, []int{0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range batch {
		if r.WireBytes <= 0 {
			t.Fatal("zero wire bytes")
		}
		total += r.WireBytes
	}
	// Batched accounting sums to the whole frame; it must be smaller than
	// three individual response frames would be.
	var singles int
	for i := uint32(0); i < 3; i++ {
		r, err := c.Fetch(context.Background(), i, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		singles += r.WireBytes
	}
	if total >= singles {
		t.Fatalf("batched wire bytes %d not below %d", total, singles)
	}
}

func TestFetchBatchValidation(t *testing.T) {
	st := testStore(t, 2)
	_, dial := startServer(t, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 1})
	c := dial()

	if _, err := c.FetchBatch(context.Background(), nil, nil, 1); err == nil {
		t.Fatal("accepted empty batch")
	}
	if _, err := c.FetchBatch(context.Background(), []uint32{0}, []int{0, 1}, 1); err == nil {
		t.Fatal("accepted mismatched splits")
	}
	if _, err := c.FetchBatch(context.Background(), []uint32{0}, []int{-1}, 1); err == nil {
		t.Fatal("accepted out-of-range split")
	}
	if _, err := c.FetchBatch(context.Background(), []uint32{0}, []int{PackDirective(0, 256)}, 1); err == nil {
		t.Fatal("accepted out-of-range fidelity")
	}
	big := make([]uint32, wire.MaxBatchItems+1)
	bigSplits := make([]int, len(big))
	if _, err := c.FetchBatch(context.Background(), big, bigSplits, 1); err == nil {
		t.Fatal("accepted oversized batch")
	}
	// Per-item failures do not fail the call: the healthy item comes back
	// and the broken one carries its error in FetchResult.Err.
	res, err := c.FetchBatch(context.Background(), []uint32{0, 99}, []int{0, 0}, 1)
	if err != nil {
		t.Fatalf("batch with missing sample failed whole call: %v", err)
	}
	if res[0].Err != nil {
		t.Fatalf("healthy item err = %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, ErrSampleMissing) || res[1].Status != wire.FetchNotFound {
		t.Fatalf("missing item = %+v", res[1])
	}
	res, err = c.FetchBatch(context.Background(), []uint32{0}, []int{6}, 1)
	if err != nil {
		t.Fatalf("batch with bad split failed whole call: %v", err)
	}
	if !errors.Is(res[0].Err, ErrBadSplitReq) {
		t.Fatalf("bad split item err = %v", res[0].Err)
	}
	c.Close()
	if _, err := c.FetchBatch(context.Background(), []uint32{0}, []int{0}, 1); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("closed client err = %v", err)
	}
}

func TestFetchBatchDeterministicAugmentation(t *testing.T) {
	// The same (job, epoch, sample) must produce identical artifacts via
	// batch and single paths — augmentation seeds don't depend on request
	// shape.
	set := testImageSet(t, 1)
	st, _ := FromImageSet(set)
	p := pipeline.DefaultStandard()
	_, dial := startServer(t, ServerConfig{Store: st, Pipeline: p, Cores: 1})
	a := dial()
	b := dial()

	batch, err := a.FetchBatch(context.Background(), []uint32{0}, []int{3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	single, err := b.Fetch(context.Background(), 0, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !batch[0].Artifact.Equal(single.Artifact) {
		t.Fatal("batch and single artifacts differ for the same seed context")
	}
}
