package storage

import "context"

// ShardRouter is the optional client capability the clairvoyant prefetch
// scheduler drives: a client that can expose its placement function and
// accept sub-batches routed to one shard. *cluster.ShardedClient implements
// it directly and *cache.TenantFetcher forwards it, so lookahead composes
// with the shared-cache stack. A plain single-server client does not
// implement it — the trainer then treats the whole tier as one shard.
//
// The interface lives here (not in cluster) because it is part of the
// client contract every layer of the fetch stack speaks, and the packages
// on both sides of that stack already depend on storage.
type ShardRouter interface {
	// ShardInfo reports the fan-out width and placement function, or
	// ok=false when the underlying transport has no shard structure (the
	// caller should fall back to single-link scheduling).
	ShardInfo() (shards int, shardOf func(sample uint32) int, ok bool)
	// FetchShard issues one round trip for a sub-batch that lives entirely
	// on the given shard, bypassing the fan-out partitioner. Per-item
	// errors surface in FetchResult.Err; a non-nil error describes the
	// whole round trip (shard transport failure, validation).
	FetchShard(ctx context.Context, shard int, samples []uint32, splits []int, epoch uint64) ([]FetchResult, error)
}
