package storage

import (
	"context"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// TestConnectionGauge: the open-connection gauge tracks accepts and
// disconnects.
func TestConnectionGauge(t *testing.T) {
	srv, dial := startServer(t, ServerConfig{
		Store:    testStore(t, 4),
		Pipeline: pipeline.Standard(pipeline.StandardOptions{CropSize: 24, FlipP: -1}),
	})
	ctr := srv.Counters()

	waitFor := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for ctr.Connections.Load() != want {
			if time.Now().After(deadline) {
				t.Fatalf("connections gauge stuck at %d, want %d", ctr.Connections.Load(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	c1 := dial()
	if _, err := c1.Fetch(context.Background(), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(1)
	c2 := dial()
	if _, err := c2.Fetch(context.Background(), 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(2)
	c1.Close()
	waitFor(1)
	c2.Close()
	waitFor(0)
	if got := ctr.InFlight.Load(); got != 0 {
		t.Fatalf("in-flight gauge %d after quiescence", got)
	}
}
