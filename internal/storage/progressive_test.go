package storage

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/imaging"
	"repro/internal/pipeline"
)

// progressiveStore materializes n synthetic images as progressive containers
// with the full scan count.
func progressiveStore(t testing.TB, n int) *Store {
	t.Helper()
	blobs := make([][]byte, n)
	for i := range blobs {
		im, err := imaging.Synthesize(imaging.SynthParams{
			W: 48 + 8*i, H: 40 + 8*i, Detail: 0.5, Seed: uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		blobs[i], err = imaging.EncodeProgressive(im, 80, imaging.MaxScans)
		if err != nil {
			t.Fatal(err)
		}
	}
	st, err := NewStore("prog-set", blobs)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPackDirective(t *testing.T) {
	for _, c := range []struct{ split, fid int }{{0, 0}, {3, 0}, {0, 2}, {5, 3}, {255, 255}} {
		d := PackDirective(c.split, c.fid)
		s, f := UnpackDirective(d)
		if s != c.split || f != c.fid {
			t.Fatalf("directive (%d,%d) -> %d -> (%d,%d)", c.split, c.fid, d, s, f)
		}
	}
	// A plain split value is its own directive: legacy call sites that never
	// pack stay correct.
	if PackDirective(4, 0) != 4 {
		t.Fatal("PackDirective(4, 0) != 4")
	}
}

// The server must answer a reduced-fidelity raw fetch with a bit-identical
// prefix of the stored container — sliced, never re-encoded — and it must do
// so with zero executor cores, since slicing burns no preprocessing CPU.
func TestServerServesProgressivePrefix(t *testing.T) {
	st := progressiveStore(t, 3)
	srv, dial := startServer(t, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 0})
	c := dial()

	stored, err := st.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, scans, _, err := imaging.ProgressiveInfo(stored)
	if err != nil {
		t.Fatal(err)
	}

	// Full fidelity ships the whole container and stays off the fast path.
	full, err := c.Fetch(context.Background(), 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.Artifact.Kind != pipeline.KindRaw || !bytes.Equal(full.Artifact.Raw, stored) {
		t.Fatal("full-fidelity fetch did not ship the stored container")
	}
	if srv.Counters().PrefixServed.Load() != 0 {
		t.Fatal("full-fidelity fetch hit the prefix path")
	}

	// One dropped scan serves exactly SlicePrefix(stored, scans-1).
	drop := 1
	want, err := imaging.SlicePrefix(stored, scans-drop)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Fetch(context.Background(), 1, PackDirective(0, drop), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity != drop || res.Artifact.Kind != pipeline.KindRaw {
		t.Fatalf("result fidelity=%d kind=%v", res.Fidelity, res.Artifact.Kind)
	}
	if !bytes.Equal(res.Artifact.Raw, want) {
		t.Fatal("prefix-served bytes differ from SlicePrefix of the stored container")
	}
	if len(res.Artifact.Raw) >= len(stored) {
		t.Fatal("prefix serve saved no bytes")
	}
	if got := srv.Counters().PrefixServed.Load(); got != 1 {
		t.Fatalf("PrefixServed = %d, want 1", got)
	}
	if saved := srv.Counters().PrefixBytesSaved.Load(); saved != uint64(len(stored)-len(want)) {
		t.Fatalf("PrefixBytesSaved = %d, want %d", saved, len(stored)-len(want))
	}

	// The prefix still decodes to a valid lower-fidelity image.
	im, k, err := imaging.DecodeProgressive(res.Artifact.Raw)
	if err != nil || k != scans-drop {
		t.Fatalf("served prefix decodes to %d scans, err %v", k, err)
	}
	im.Release()

	// An excessive drop clamps to the base scan rather than failing.
	base, err := imaging.SlicePrefix(stored, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err = c.Fetch(context.Background(), 1, PackDirective(0, 200), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Artifact.Raw, base) {
		t.Fatal("over-deep drop did not clamp to the base scan")
	}
}

// A reduced-fidelity fetch of a non-progressive object degrades gracefully:
// the server ships the full stored bytes instead of failing the request.
func TestFidelityOnLegacyObjectServesFull(t *testing.T) {
	st := testStore(t, 2) // plain SJPG objects
	srv, dial := startServer(t, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 1})
	c := dial()
	stored, err := st.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Fetch(context.Background(), 0, PackDirective(0, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Artifact.Raw, stored) {
		t.Fatal("legacy object not served in full under a fidelity directive")
	}
	if srv.Counters().PrefixServed.Load() != 0 {
		t.Fatal("legacy object counted as prefix-served")
	}
}

// Batched fetches carry per-item fidelity through the wide wire layout and
// the same server fast path.
func TestFetchBatchProgressivePrefix(t *testing.T) {
	st := progressiveStore(t, 4)
	srv, dial := startServer(t, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 0})
	c := dial()

	samples := []uint32{0, 1, 2, 3}
	splits := []int{0, PackDirective(0, 1), 0, PackDirective(0, 2)}
	res, err := c.FetchBatch(context.Background(), samples, splits, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		stored, err := st.Get(samples[i])
		if err != nil {
			t.Fatal(err)
		}
		_, fid := UnpackDirective(splits[i])
		want := stored
		if fid > 0 {
			_, _, _, scans, _, err := imaging.ProgressiveInfo(stored)
			if err != nil {
				t.Fatal(err)
			}
			if want, err = imaging.SlicePrefix(stored, scans-fid); err != nil {
				t.Fatal(err)
			}
		}
		if r.Fidelity != fid || !bytes.Equal(r.Artifact.Raw, want) {
			t.Fatalf("item %d (fid %d): served %d bytes, want %d", i, fid, len(r.Artifact.Raw), len(want))
		}
	}
	if got := srv.Counters().PrefixServed.Load(); got != 2 {
		t.Fatalf("PrefixServed = %d, want 2", got)
	}
}

// Out-of-range packed directives are rejected client-side before any frame
// is sent.
func TestFidelityDirectiveValidation(t *testing.T) {
	st := progressiveStore(t, 1)
	_, dial := startServer(t, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 0})
	c := dial()
	if _, err := c.Fetch(context.Background(), 0, PackDirective(0, 300), 1); err == nil {
		t.Fatal("accepted fidelity 300")
	}
	if _, err := c.FetchBatch(context.Background(), []uint32{0}, []int{PackDirective(0, 300)}, 1); err == nil {
		t.Fatal("batch accepted fidelity 300")
	}
}
