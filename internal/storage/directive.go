package storage

// Packed fetch directives. The trainer's fetch paths carry a single int
// "split" per sample through several wrapper layers (retry, sharding,
// caching). The progressive dimension packs into the same int — split in the
// low byte, fidelity (refinement scans to withhold) in the next — so every
// wrapper signature keeps working unchanged and a plain split value is the
// identical directive it always was: PackDirective(s, 0) == s.

// PackDirective combines a pipeline split and a progressive fidelity drop
// into one directive int. Both must fit a byte; callers validate ranges (the
// fetch paths reject out-of-range values).
func PackDirective(split, fidelity int) int {
	return split | fidelity<<8
}

// UnpackDirective splits a directive int back into (split, fidelity).
func UnpackDirective(d int) (split, fidelity int) {
	return d & 0xFF, d >> 8
}
