package storage

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// fakeServer handshakes on the server end of an in-memory pipe and hands the
// connection to handler; the client end is returned. It lets tests script
// exact response orderings the real server would only produce under races.
func fakeServer(t *testing.T, handler func(conn net.Conn)) net.Conn {
	t.Helper()
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		msg, err := wire.Read(server)
		if err != nil {
			return
		}
		if _, ok := msg.(*wire.Hello); !ok {
			return
		}
		if err := wire.Write(server, &wire.HelloAck{
			Version: wire.Version, DatasetName: "fake", NumSamples: 100,
		}); err != nil {
			return
		}
		handler(server)
	}()
	t.Cleanup(func() { client.Close() })
	return client
}

// readFetches reads n Fetch frames and returns them keyed by sample ID.
func readFetches(t *testing.T, conn net.Conn, n int) map[uint32]*wire.Fetch {
	t.Helper()
	out := make(map[uint32]*wire.Fetch, n)
	for i := 0; i < n; i++ {
		msg, err := wire.Read(conn)
		if err != nil {
			t.Errorf("fake server read %d: %v", i, err)
			return out
		}
		f, ok := msg.(*wire.Fetch)
		if !ok {
			t.Errorf("fake server got %s, want Fetch", msg.Type())
			return out
		}
		out[f.Sample] = f
	}
	return out
}

// rawRespFor encodes a FetchResp whose artifact is the raw payload.
func rawRespFor(t *testing.T, req *wire.Fetch, payload []byte) *wire.FetchResp {
	t.Helper()
	enc, err := pipeline.RawArtifact(payload).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return &wire.FetchResp{
		RequestID: req.RequestID, Sample: req.Sample, Split: req.Split,
		Status: wire.FetchOK, Artifact: enc,
	}
}

// TestSessionSustainsFourInFlight proves genuine pipelining: the fake server
// refuses to answer until it has read four requests off one connection, then
// responds in reverse order. A lock-step client would deadlock here.
func TestSessionSustainsFourInFlight(t *testing.T) {
	const n = 4
	conn := fakeServer(t, func(server net.Conn) {
		reqs := readFetches(t, server, n)
		for s := uint32(n); s >= 1; s-- { // reverse order
			req, ok := reqs[s]
			if !ok {
				return
			}
			if err := wire.Write(server, rawRespFor(t, req, []byte{byte(s), 0xAA})); err != nil {
				return
			}
		}
	})
	c, err := NewClientWithOptions(conn, ClientOptions{JobID: 1, RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sample := uint32(i + 1)
			res, err := c.Fetch(context.Background(), sample, 0, 1)
			if err != nil {
				errs[i] = err
				return
			}
			if res.Sample != sample || res.Artifact.Kind != pipeline.KindRaw ||
				!bytes.Equal(res.Artifact.Raw, []byte{byte(sample), 0xAA}) {
				t.Errorf("sample %d got wrong response: %+v", sample, res)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
}

// TestSessionCancelDoesNotPoison cancels one in-flight request and checks
// (a) the caller unblocks promptly with the context error, (b) other
// in-flight requests complete, and (c) the session survives both the cancel
// and the server's late response to the cancelled request.
func TestSessionCancelDoesNotPoison(t *testing.T) {
	release := make(chan struct{})
	conn := fakeServer(t, func(server net.Conn) {
		reqs := readFetches(t, server, 2) // samples 1 (to cancel) and 2
		if len(reqs) != 2 {
			return
		}
		if err := wire.Write(server, rawRespFor(t, reqs[2], []byte{2})); err != nil {
			return
		}
		<-release // wait until sample 1's caller was cancelled
		req3 := readFetches(t, server, 1)[3]
		if req3 == nil {
			return
		}
		// Late response to the cancelled request: must be dropped silently.
		if err := wire.Write(server, rawRespFor(t, reqs[1], []byte{1})); err != nil {
			return
		}
		if err := wire.Write(server, rawRespFor(t, req3, []byte{3})); err != nil {
			return
		}
	})
	c, err := NewClientWithOptions(conn, ClientOptions{JobID: 1, RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx1, cancel1 := context.WithCancel(context.Background())
	fetch1Err := make(chan error, 1)
	go func() {
		_, err := c.Fetch(ctx1, 1, 0, 1)
		fetch1Err <- err
	}()

	// Sample 2 completes while sample 1 is stuck in flight.
	res2, err := c.Fetch(context.Background(), 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res2.Artifact.Raw, []byte{2}) {
		t.Fatalf("sample 2 payload %v", res2.Artifact.Raw)
	}

	cancel1()
	select {
	case err := <-fetch1Err:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled fetch err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled fetch did not unblock")
	}
	close(release)

	// The session still works after the cancel and the dropped late response.
	res3, err := c.Fetch(context.Background(), 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res3.Artifact.Raw, []byte{3}) {
		t.Fatalf("sample 3 payload %v", res3.Artifact.Raw)
	}
}

// TestSessionRequestTimeout checks that a stalled server can no longer hang
// a caller forever: the per-request timeout fires and surfaces as the
// retryable ErrRequestTimeout.
func TestSessionRequestTimeout(t *testing.T) {
	conn := fakeServer(t, func(server net.Conn) {
		for { // swallow requests, never answer
			if _, err := wire.Read(server); err != nil {
				return
			}
		}
	})
	c, err := NewClientWithOptions(conn, ClientOptions{JobID: 1, RequestTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Fetch(context.Background(), 1, 0, 1)
	if !errors.Is(err, ErrRequestTimeout) {
		t.Fatalf("err = %v, want ErrRequestTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}

	// A caller's own cancellation is reported as such, not as a timeout.
	// The fake server signals once the request frame has arrived, so the
	// cancel provably lands while the fetch is in flight.
	sawFetch := make(chan struct{})
	c2, err := NewClientWithOptions(fakeServer(t, func(server net.Conn) {
		first := true
		for {
			if _, err := wire.Read(server); err != nil {
				return
			}
			if first {
				first = false
				close(sawFetch)
			}
		}
	}), ClientOptions{JobID: 1, RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-sawFetch
		cancel()
	}()
	if _, err := c2.Fetch(ctx, 1, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSessionPerRequestError checks that an ErrorResp carrying a RequestID
// fails only that request while the session keeps serving others.
func TestSessionPerRequestError(t *testing.T) {
	conn := fakeServer(t, func(server net.Conn) {
		reqs := readFetches(t, server, 2)
		if len(reqs) != 2 {
			return
		}
		if err := wire.Write(server, &wire.ErrorResp{
			RequestID: reqs[1].RequestID, Code: wire.CodeBadRequest, Message: "scripted failure",
		}); err != nil {
			return
		}
		if err := wire.Write(server, rawRespFor(t, reqs[2], []byte{2})); err != nil {
			return
		}
	})
	c, err := NewClientWithOptions(conn, ClientOptions{JobID: 1, RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	var err1, err2 error
	go func() {
		defer wg.Done()
		_, err1 = c.Fetch(context.Background(), 1, 0, 1)
	}()
	go func() {
		defer wg.Done()
		_, err2 = c.Fetch(context.Background(), 2, 0, 1)
	}()
	wg.Wait()
	if err1 == nil || errors.Is(err1, ErrClientClosed) {
		t.Fatalf("errored request got %v", err1)
	}
	if err2 != nil {
		t.Fatalf("healthy request got %v", err2)
	}
}

// TestSessionConcurrentDemuxStress hammers one real server connection with
// concurrent callers and checks every caller receives the response matching
// its request (raw payload equals the stored object for that sample ID).
// Run with -race: this is the demux-correctness acceptance test.
func TestSessionConcurrentDemuxStress(t *testing.T) {
	const (
		goroutines = 16
		perG       = 25
		samples    = 8
	)
	st := testStore(t, samples)
	_, dial := startServer(t, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 2})
	c := dial()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				id := uint32((g*perG + k) % samples)
				res, err := c.Fetch(context.Background(), id, 0, 1)
				if err != nil {
					t.Errorf("g%d fetch %d: %v", g, id, err)
					return
				}
				want, err := st.Get(id)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Sample != id || res.Artifact.Kind != pipeline.KindRaw ||
					!bytes.Equal(res.Artifact.Raw, want) {
					t.Errorf("g%d: response for sample %d does not match stored object", g, id)
					return
				}
				if k%10 == 0 {
					if _, err := c.Stats(context.Background()); err != nil {
						t.Errorf("g%d stats: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSessionConcurrentOverFlakyConn runs concurrent callers over a
// connection that dies after a byte budget: every caller must get either a
// correct response or an error — never a wrong sample, never a hang.
func TestSessionConcurrentOverFlakyConn(t *testing.T) {
	st := testStore(t, 4)
	srv, err := NewServer(ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	l := netsim.NewPipeListener()
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClientWithOptions(netsim.Flaky(conn, 96<<10), ClientOptions{
		JobID: 42, RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	var okCount, errCount int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				id := uint32((g + k) % 4)
				res, err := c.Fetch(context.Background(), id, 0, 1)
				mu.Lock()
				if err != nil {
					errCount++
				} else {
					okCount++
				}
				mu.Unlock()
				if err != nil {
					continue
				}
				want, _ := st.Get(id)
				if res.Sample != id || !bytes.Equal(res.Artifact.Raw, want) {
					t.Errorf("g%d: wrong payload for sample %d", g, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if okCount == 0 {
		t.Fatal("no fetch succeeded before the budget")
	}
	if errCount == 0 {
		t.Fatal("flaky budget never fired; raise the request count or lower the budget")
	}
}

// TestReconnectingConcurrentCallers drives concurrent callers through
// ReconnectingClient over connections that keep dying: all fetches must
// eventually succeed with correct payloads, and teardown must be
// single-flight (the session pipelines between failures).
func TestReconnectingConcurrentCallers(t *testing.T) {
	st := testStore(t, 4)
	srv, err := NewServer(ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	l := netsim.NewPipeListener()
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	rc, err := NewReconnecting(func() (*Client, error) {
		conn, err := l.Dial()
		if err != nil {
			return nil, err
		}
		return NewClientWithOptions(netsim.Flaky(conn, 48<<10), ClientOptions{
			JobID: 42, RequestTimeout: 5 * time.Second,
		})
	}, 30, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				id := uint32((g + k) % 4)
				res, err := rc.Fetch(context.Background(), id, 0, 1)
				if err != nil {
					t.Errorf("g%d fetch %d: %v", g, id, err)
					return
				}
				want, _ := st.Get(id)
				if res.Sample != id || !bytes.Equal(res.Artifact.Raw, want) {
					t.Errorf("g%d: wrong payload for sample %d", g, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if rc.Retries() == 0 {
		t.Fatal("flaky connections never triggered a reconnect")
	}
}
