package storage

import (
	"context"
	"testing"

	"repro/internal/pipeline"
)

// TestPlanVersionStamping verifies the session stamps fetches with the plan
// version and the server ratchets its high-water mark while counting
// regressions — the observability contract the adaptive control plane's
// mixed-version swap semantics rest on.
func TestPlanVersionStamping(t *testing.T) {
	srv, dial := startServer(t, ServerConfig{
		Store:    testStore(t, 8),
		Pipeline: pipeline.DefaultStandard(),
		Cores:    2,
	})
	c := dial()
	ctx := context.Background()

	// Unversioned traffic leaves the counters untouched.
	if _, err := c.Fetch(ctx, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if v := srv.Counters().PlanVersion.Load(); v != 0 {
		t.Fatalf("unversioned fetch moved PlanVersion to %d", v)
	}

	c.SetPlanVersion(3)
	if _, err := c.Fetch(ctx, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if v := srv.Counters().PlanVersion.Load(); v != 3 {
		t.Fatalf("PlanVersion = %d, want 3", v)
	}

	// A batch stamped with a newer version ratchets the mark once.
	c.SetPlanVersion(5)
	if _, err := c.FetchBatch(ctx, []uint32{2, 3}, []int{0, 0}, 1); err != nil {
		t.Fatal(err)
	}
	if v := srv.Counters().PlanVersion.Load(); v != 5 {
		t.Fatalf("PlanVersion after batch = %d, want 5", v)
	}
	if r := srv.Counters().PlanRegressions.Load(); r != 0 {
		t.Fatalf("regressions = %d before any stale traffic", r)
	}

	// Mixed-version traffic during a swap: an older stamp still serves the
	// fetch but counts as a regression.
	c.SetPlanVersion(4)
	res, err := c.Fetch(ctx, 4, 0, 1)
	if err != nil || res.Err != nil {
		t.Fatalf("stale-version fetch failed: %v / %v", err, res.Err)
	}
	if v := srv.Counters().PlanVersion.Load(); v != 5 {
		t.Fatalf("regressed stamp moved the high-water mark to %d", v)
	}
	if r := srv.Counters().PlanRegressions.Load(); r != 1 {
		t.Fatalf("regressions = %d, want 1", r)
	}
}

// TestCountersObservePlanVersion covers the ratchet in isolation.
func TestCountersObservePlanVersion(t *testing.T) {
	var c Counters
	c.ObservePlanVersion(0)
	if c.PlanVersion.Load() != 0 || c.PlanRegressions.Load() != 0 {
		t.Fatal("version 0 must be ignored")
	}
	c.ObservePlanVersion(2)
	c.ObservePlanVersion(2) // equal is not a regression
	c.ObservePlanVersion(1) // older is
	c.ObservePlanVersion(7)
	if v := c.PlanVersion.Load(); v != 7 {
		t.Fatalf("PlanVersion = %d, want 7", v)
	}
	if r := c.PlanRegressions.Load(); r != 1 {
		t.Fatalf("PlanRegressions = %d, want 1", r)
	}
}
