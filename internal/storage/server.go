package storage

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/imaging"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// ServerConfig configures a storage server.
type ServerConfig struct {
	Store    *Store
	Pipeline *pipeline.Pipeline
	// Cores is the CPU-core budget for offloaded preprocessing; 0 disables
	// offloading (fetches with Split > 0 fail).
	Cores int
	// Slowdown models weaker storage-node CPUs (1 = same as compute node).
	Slowdown float64
	// IdleTimeout drops connections with no request for this long
	// (0 = never). Applies between requests, not during handling.
	IdleTimeout time.Duration
	// MaxInFlight bounds concurrently handled requests per connection
	// (0 → DefaultServerMaxInFlight). Requests beyond the bound queue in
	// the read loop, applying backpressure through the socket.
	MaxInFlight int
	// Admission is the global admission controller: an in-flight byte
	// budget with per-tenant weighted queues and retry-after shedding,
	// enforced across every connection. Several servers may share one
	// controller (cluster.Launch does, making the budget tier-wide). Nil
	// disables admission control — the per-connection MaxInFlight
	// semaphore is then the only bound.
	Admission *AdmissionController
	// Logger receives connection-level errors; nil silences them.
	Logger *log.Logger
}

// DefaultServerMaxInFlight is the per-connection concurrent-request bound
// when ServerConfig.MaxInFlight is zero.
const DefaultServerMaxInFlight = 32

// Server answers wire-protocol requests: handshake, fetches with offload
// directives, and stats. Each connection is a multiplexed session: a read
// loop dispatches requests to bounded handler goroutines and a single
// writer goroutine serializes responses in completion order, so responses
// to a pipelining client genuinely interleave. The executor's core budget
// still bounds actual preprocessing parallelism across all connections.
type Server struct {
	store       *Store
	pipe        *pipeline.Pipeline
	exec        *Executor
	counters    *Counters
	logger      *log.Logger
	idleTimeout time.Duration
	maxInFlight int
	admission   *AdmissionController
	// shutdown closes when the server does, unblocking requests parked in
	// the admission queue.
	shutdown chan struct{}

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer validates the configuration and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("storage: server needs a store")
	}
	if cfg.Pipeline == nil {
		return nil, errors.New("storage: server needs a pipeline")
	}
	if cfg.Slowdown == 0 {
		cfg.Slowdown = 1
	}
	counters := &Counters{}
	exec, err := NewExecutor(cfg.Pipeline, cfg.Cores, cfg.Slowdown, counters)
	if err != nil {
		return nil, err
	}
	if cfg.IdleTimeout < 0 {
		return nil, errors.New("storage: negative idle timeout")
	}
	if cfg.MaxInFlight < 0 {
		return nil, errors.New("storage: negative max in-flight")
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = DefaultServerMaxInFlight
	}
	return &Server{
		store:       cfg.Store,
		pipe:        cfg.Pipeline,
		exec:        exec,
		counters:    counters,
		logger:      cfg.Logger,
		idleTimeout: cfg.IdleTimeout,
		maxInFlight: maxInFlight,
		admission:   cfg.Admission,
		shutdown:    make(chan struct{}),
		conns:       make(map[net.Conn]struct{}),
	}, nil
}

// Counters exposes the server's accounting (read with atomic loads).
func (s *Server) Counters() *Counters { return s.counters }

// Admission exposes the server's admission controller (nil when admission
// control is disabled), so monitors can snapshot budget and shed counters.
func (s *Server) Admission() *AdmissionController { return s.admission }

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("storage: server closed")

// Serve accepts connections on l until Close. It returns ErrServerClosed on
// graceful shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("storage: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.counters.Connections.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer s.counters.Connections.Add(-1)
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener, closes active connections, and waits for
// handlers to drain. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.shutdown)
	l := s.listener
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// send writes a message, charging its frame size to the traffic counter
// before the write: a frame the client has received is then always covered
// by any stats snapshot taken afterwards, so byte counts read through the
// Stats RPC are monotone with respect to what the client observed.
func (s *Server) send(conn net.Conn, m wire.Message) error {
	s.counters.BytesSent.Add(uint64(wire.FrameSize(m)))
	return wire.Write(conn, m)
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()

	// Handshake.
	first, err := wire.Read(conn)
	if err != nil {
		if err != io.EOF {
			s.logf("storage: handshake read: %v", err)
		}
		return
	}
	hello, ok := first.(*wire.Hello)
	if !ok {
		s.send(conn, &wire.ErrorResp{Code: wire.CodeBadRequest, Message: "expected Hello"})
		return
	}
	if hello.Version != wire.Version {
		s.send(conn, &wire.ErrorResp{Code: wire.CodeBadRequest,
			Message: fmt.Sprintf("unsupported version %d", hello.Version)})
		return
	}
	jobID := hello.JobID
	if err := s.send(conn, &wire.HelloAck{
		Version:     wire.Version,
		DatasetName: s.store.Name(),
		NumSamples:  uint32(s.store.N()),
	}); err != nil {
		s.logf("storage: handshake ack: %v", err)
		return
	}

	// Response writer: the single goroutine writing frames after the
	// handshake, serializing responses in whatever order handlers finish.
	// On a write error it closes the connection (unblocking the read loop)
	// but keeps draining so handlers never block on send.
	respCh := make(chan wire.Message, s.maxInFlight)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		broken := false
		for m := range respCh {
			if broken {
				// Still recycle pooled artifact buffers while draining.
				wire.Recycle(m)
				continue
			}
			err := s.send(conn, m)
			wire.Recycle(m)
			if err != nil {
				if !errors.Is(err, net.ErrClosed) {
					s.logf("storage: send resp: %v", err)
				}
				conn.Close()
				broken = true
			}
		}
	}()

	// Read loop: dispatch each request to its own handler goroutine,
	// bounded by maxInFlight. Fetch, batch, and stats requests are all
	// handled uniformly so responses interleave by completion order.
	sem := make(chan struct{}, s.maxInFlight)
	var wg sync.WaitGroup
	dispatch := func(handle func() wire.Message) {
		sem <- struct{}{}
		wg.Add(1)
		s.counters.InFlight.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			defer s.counters.InFlight.Add(-1)
			respCh <- handle()
		}()
	}

readLoop:
	for {
		if s.idleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
				s.logf("storage: set deadline: %v", err)
				break
			}
		}
		msg, err := wire.Read(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				s.logf("storage: read: %v", err)
			}
			break
		}
		switch req := msg.(type) {
		case *wire.Fetch:
			dispatch(func() wire.Message { return s.admitFetch(jobID, req) })
		case *wire.FetchBatch:
			dispatch(func() wire.Message { return s.admitFetchBatch(jobID, req) })
		case *wire.StatsReq:
			dispatch(func() wire.Message {
				return &wire.StatsResp{
					RequestID:      req.RequestID,
					SamplesServed:  s.counters.SamplesServed.Load(),
					OpsExecuted:    s.counters.OpsExecuted.Load(),
					BytesSent:      s.counters.BytesSent.Load(),
					ServerCPUNanos: s.counters.CPUNanos.Load(),
				}
			})
		default:
			// Connection-level protocol violation: RequestID 0 tells the
			// client the whole session is done.
			respCh <- &wire.ErrorResp{Code: wire.CodeBadRequest,
				Message: fmt.Sprintf("unexpected %s", msg.Type())}
			break readLoop
		}
	}
	wg.Wait()
	close(respCh)
	<-writerDone
}

// estimateFetchBytes predicts a fetch's in-flight footprint for admission:
// the raw stored size of the sample (the server buffers at most that much —
// offloaded artifacts are smaller). Unknown samples charge one byte; the
// handler will answer FetchNotFound cheaply.
func (s *Server) estimateFetchBytes(sample uint32) int64 {
	raw, err := s.store.Get(sample)
	if err != nil {
		return 1
	}
	return int64(len(raw))
}

// admit runs fn under the admission controller, charging bytes against the
// global in-flight budget for the duration of the handler (an approximation
// of "until the frame is written": the response is handed to the writer
// goroutine at release time, whose queue is bounded by maxInFlight). A shed
// request answers with a RetryAfter frame carrying the controller's backoff
// hint instead of a response.
func (s *Server) admit(jobID, reqID uint64, bytes int64, fn func() wire.Message) wire.Message {
	if s.admission == nil {
		return fn()
	}
	release, err := s.admission.Acquire(jobID, bytes, s.shutdown)
	if err != nil {
		var ra *RetryAfterError
		if errors.As(err, &ra) {
			s.counters.ShedLoad.Add(1)
			return &wire.RetryAfter{
				RequestID: reqID,
				Millis:    uint32(ra.Delay.Milliseconds()),
				Queued:    uint32(ra.Queued),
			}
		}
		// Shutdown while queued: the connection is going away with us.
		return &wire.ErrorResp{RequestID: reqID, Code: wire.CodeInternal, Message: "server shutting down"}
	}
	defer release()
	return fn()
}

func (s *Server) admitFetch(jobID uint64, req *wire.Fetch) wire.Message {
	return s.admit(jobID, req.RequestID, s.estimateFetchBytes(req.Sample),
		func() wire.Message { return s.handleFetch(jobID, req) })
}

func (s *Server) admitFetchBatch(jobID uint64, req *wire.FetchBatch) wire.Message {
	var bytes int64
	for _, item := range req.Items {
		bytes += s.estimateFetchBytes(item.Sample)
	}
	return s.admit(jobID, req.RequestID, bytes,
		func() wire.Message { return s.handleFetchBatch(jobID, req) })
}

// handleFetchBatch serves a batched fetch: items execute concurrently (the
// executor's core budget still bounds actual CPU parallelism) and the
// response preserves request order.
func (s *Server) handleFetchBatch(jobID uint64, req *wire.FetchBatch) *wire.FetchBatchResp {
	// Observed once per batch; the per-item Fetch values synthesized below
	// stay unversioned so the funnel in handleFetch does not double-count.
	s.counters.ObservePlanVersion(req.PlanVersion)
	resp := &wire.FetchBatchResp{
		RequestID: req.RequestID,
		Items:     make([]wire.FetchBatchRespItem, len(req.Items)),
	}
	var wg sync.WaitGroup
	for i, item := range req.Items {
		wg.Add(1)
		go func(i int, item wire.FetchBatchItem) {
			defer wg.Done()
			one := s.handleFetch(jobID, &wire.Fetch{
				RequestID: req.RequestID,
				Sample:    item.Sample,
				Split:     item.Split,
				Epoch:     req.Epoch,
				Fidelity:  item.Fidelity,
			})
			resp.Items[i] = wire.FetchBatchRespItem{
				Sample:   one.Sample,
				Split:    one.Split,
				Status:   one.Status,
				Artifact: one.Artifact,
			}
		}(i, item)
	}
	wg.Wait()
	return resp
}

func (s *Server) handleFetch(jobID uint64, req *wire.Fetch) *wire.FetchResp {
	s.counters.ObservePlanVersion(req.PlanVersion)
	resp := &wire.FetchResp{RequestID: req.RequestID, Sample: req.Sample, Split: req.Split}
	raw, err := s.store.Get(req.Sample)
	if err != nil {
		resp.Status = wire.FetchNotFound
		return resp
	}
	split := int(req.Split)
	if split > s.pipe.Len() || (split > 0 && s.exec.Cores() == 0) {
		resp.Status = wire.FetchBadSplit
		return resp
	}
	if split == 0 {
		// Progressive fast path: a reduced-fidelity raw fetch of a stored
		// SJPR container is answered by slicing the stored bytes — no
		// decode, no re-encode, no executor core. A non-progressive object
		// (or a zero drop) falls through to the normal raw path.
		if enc, saved := s.sliceProgressive(raw, req.Fidelity); enc != nil {
			resp.Status = wire.FetchOK
			resp.Artifact = enc
			s.counters.SamplesServed.Add(1)
			s.counters.PrefixServed.Add(1)
			s.counters.PrefixBytesSaved.Add(uint64(saved))
			return resp
		}
	}
	seed := pipeline.Seed{Job: jobID, Epoch: req.Epoch, Sample: uint64(req.Sample)}
	// RunPrefixEncoded encodes into a pooled buffer; the writer goroutine
	// returns it to the arena (wire.Recycle) once the frame is sent.
	encoded, err := s.exec.RunPrefixEncoded(raw, split, seed)
	if err != nil {
		s.logf("storage: prefix sample=%d split=%d: %v", req.Sample, split, err)
		resp.Status = wire.FetchFailed
		return resp
	}
	resp.Status = wire.FetchOK
	resp.Artifact = encoded
	s.counters.SamplesServed.Add(1)
	return resp
}

// sliceProgressive serves the first (scans − drop) scans of a stored
// progressive container, keeping at least the base scan. It returns the
// encoded raw artifact in a pooled buffer — the response's artifact bytes
// are recycled by the writer goroutine, so the stored container must never
// be aliased — plus the refinement bytes withheld. A nil return means the
// fast path does not apply (drop 0, non-progressive object, or a container
// the slicer rejects) and the caller should serve the full object.
func (s *Server) sliceProgressive(raw []byte, drop uint8) ([]byte, int) {
	if drop == 0 || !imaging.IsProgressive(raw) {
		return nil, 0
	}
	_, _, _, scans, _, err := imaging.ProgressiveInfo(raw)
	if err != nil {
		return nil, 0
	}
	keep := scans - int(drop)
	if keep < 1 {
		keep = 1
	}
	prefix, err := imaging.SlicePrefix(raw, keep)
	if err != nil || len(prefix) == len(raw) {
		return nil, 0
	}
	enc := bufpool.GetBytes(1 + len(prefix))
	enc[0] = byte(pipeline.KindRaw)
	copy(enc[1:], prefix)
	return enc, len(raw) - len(prefix)
}
