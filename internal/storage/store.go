// Package storage implements the remote-storage side of SOPHON: an
// in-memory object store (the paper caches its datasets in storage-node
// RAM), a near-storage executor that runs preprocessing prefixes under a
// bounded CPU-core budget, a TCP server speaking the wire protocol, and the
// matching compute-node client.
package storage

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/dataset"
)

// Store is an immutable in-memory object store: sample ID → stored bytes.
// A store may be partial (see NewPartialStore): it spans the full sample ID
// space of a dataset but holds objects for only a subset — the shape of one
// shard of a sharded storage tier.
type Store struct {
	name       string
	objects    [][]byte
	owned      int
	totalBytes int64
}

// ErrNotFound reports a missing object.
var ErrNotFound = errors.New("storage: object not found")

// NewStore wraps pre-materialized objects. The slice is retained; callers
// must not mutate it afterwards.
func NewStore(name string, objects [][]byte) (*Store, error) {
	if len(objects) == 0 {
		return nil, errors.New("storage: store needs at least one object")
	}
	var total int64
	for i, o := range objects {
		if len(o) == 0 {
			return nil, fmt.Errorf("storage: object %d is empty", i)
		}
		total += int64(len(o))
	}
	return &Store{name: name, objects: objects, owned: len(objects), totalBytes: total}, nil
}

// NewPartialStore builds a store spanning sample IDs [0, n) that owns only
// the objects in own (ID → bytes). Lookups of unowned IDs return
// ErrNotFound; N() still reports n so every shard of a cluster agrees on
// the dataset size during the handshake.
func NewPartialStore(name string, n int, own map[uint32][]byte) (*Store, error) {
	if n <= 0 {
		return nil, fmt.Errorf("storage: partial store needs n > 0, got %d", n)
	}
	if len(own) == 0 {
		return nil, errors.New("storage: partial store owns no objects")
	}
	objects := make([][]byte, n)
	var total int64
	for id, o := range own {
		if int(id) >= n {
			return nil, fmt.Errorf("storage: owned sample %d outside [0, %d)", id, n)
		}
		if len(o) == 0 {
			return nil, fmt.Errorf("storage: object %d is empty", id)
		}
		objects[id] = o
		total += int64(len(o))
	}
	return &Store{name: name, objects: objects, owned: len(own), totalBytes: total}, nil
}

// FromImageSet materializes a synthetic image set into a store — the
// "dataset cached in memory on the storage node" setup from the paper.
func FromImageSet(s *dataset.ImageSet) (*Store, error) {
	blobs, err := s.Materialize()
	if err != nil {
		return nil, err
	}
	return NewStore(s.Name(), blobs)
}

// Name returns the dataset name.
func (s *Store) Name() string { return s.name }

// N returns the number of sample IDs the store spans (for a partial store,
// the full dataset size, not the owned count).
func (s *Store) N() int { return len(s.objects) }

// Owned returns how many objects the store actually holds.
func (s *Store) Owned() int { return s.owned }

// TotalBytes returns the summed stored size of the owned objects.
func (s *Store) TotalBytes() int64 { return s.totalBytes }

// Get returns the stored bytes of sample id. The returned slice is shared;
// callers must not mutate it.
func (s *Store) Get(id uint32) ([]byte, error) {
	if int(id) >= len(s.objects) || s.objects[id] == nil {
		return nil, fmt.Errorf("%w: sample %d of %d", ErrNotFound, id, len(s.objects))
	}
	return s.objects[id], nil
}

// Counters aggregates server-side accounting shared by the executor and the
// connection handlers. The Uint64 fields are monotone counters; InFlight and
// Connections are gauges (they go down as requests complete and connections
// close), so a monitor can watch each server of a sharded deployment live.
type Counters struct {
	SamplesServed atomic.Uint64
	OpsExecuted   atomic.Uint64
	BytesSent     atomic.Uint64
	CPUNanos      atomic.Uint64
	InFlight      atomic.Int64
	Connections   atomic.Int64
	// PlanVersion is the highest plan version observed on any fetch
	// directive (0 until a versioned client connects); PlanRegressions
	// counts requests that arrived stamped with a version lower than one
	// already seen — expected briefly during a swap (mixed-version traffic
	// is legal), but a steadily climbing count means a client is stuck on a
	// stale plan.
	PlanVersion     atomic.Uint32
	PlanRegressions atomic.Uint64
	// ShedLoad counts requests this server rejected with a retry-after
	// because admission control was saturated (the controller itself also
	// keeps a global count; this one is per-server so a sharded deployment
	// can see which shard is hot).
	ShedLoad atomic.Uint64
	// PrefixServed counts raw fetches answered from the progressive fast
	// path: the stored container was sliced to the requested fidelity with
	// no re-encoding. PrefixBytesSaved sums the refinement bytes those
	// slices withheld versus shipping the full container.
	PrefixServed     atomic.Uint64
	PrefixBytesSaved atomic.Uint64
}

// ObservePlanVersion folds one request's plan version into the counters:
// it ratchets PlanVersion up to v and counts a regression when v is older
// than the high-water mark. Version 0 (unversioned traffic) is ignored.
func (c *Counters) ObservePlanVersion(v uint32) {
	if v == 0 {
		return
	}
	for {
		cur := c.PlanVersion.Load()
		if v > cur {
			if c.PlanVersion.CompareAndSwap(cur, v) {
				return
			}
			continue
		}
		if v < cur {
			c.PlanRegressions.Add(1)
		}
		return
	}
}
