// Package storage implements the remote-storage side of SOPHON: an
// in-memory object store (the paper caches its datasets in storage-node
// RAM), a near-storage executor that runs preprocessing prefixes under a
// bounded CPU-core budget, a TCP server speaking the wire protocol, and the
// matching compute-node client.
package storage

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/dataset"
)

// Store is an immutable in-memory object store: sample ID → stored bytes.
type Store struct {
	name       string
	objects    [][]byte
	totalBytes int64
}

// ErrNotFound reports a missing object.
var ErrNotFound = errors.New("storage: object not found")

// NewStore wraps pre-materialized objects. The slice is retained; callers
// must not mutate it afterwards.
func NewStore(name string, objects [][]byte) (*Store, error) {
	if len(objects) == 0 {
		return nil, errors.New("storage: store needs at least one object")
	}
	var total int64
	for i, o := range objects {
		if len(o) == 0 {
			return nil, fmt.Errorf("storage: object %d is empty", i)
		}
		total += int64(len(o))
	}
	return &Store{name: name, objects: objects, totalBytes: total}, nil
}

// FromImageSet materializes a synthetic image set into a store — the
// "dataset cached in memory on the storage node" setup from the paper.
func FromImageSet(s *dataset.ImageSet) (*Store, error) {
	blobs, err := s.Materialize()
	if err != nil {
		return nil, err
	}
	return NewStore(s.Name(), blobs)
}

// Name returns the dataset name.
func (s *Store) Name() string { return s.name }

// N returns the number of objects.
func (s *Store) N() int { return len(s.objects) }

// TotalBytes returns the summed stored size.
func (s *Store) TotalBytes() int64 { return s.totalBytes }

// Get returns the stored bytes of sample id. The returned slice is shared;
// callers must not mutate it.
func (s *Store) Get(id uint32) ([]byte, error) {
	if int(id) >= len(s.objects) {
		return nil, fmt.Errorf("%w: sample %d of %d", ErrNotFound, id, len(s.objects))
	}
	return s.objects[id], nil
}

// Counters aggregates server-side accounting shared by the executor and the
// connection handlers.
type Counters struct {
	SamplesServed atomic.Uint64
	OpsExecuted   atomic.Uint64
	BytesSent     atomic.Uint64
	CPUNanos      atomic.Uint64
}
