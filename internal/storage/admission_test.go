package storage

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/simclock"
)

func TestAdmissionValidation(t *testing.T) {
	if _, err := NewAdmissionController(AdmissionConfig{}); err == nil {
		t.Fatal("accepted zero budget")
	}
	if _, err := NewAdmissionController(AdmissionConfig{MaxInFlightBytes: 1, MaxQueuePerTenant: -1}); err == nil {
		t.Fatal("accepted negative queue bound")
	}
	if _, err := NewAdmissionController(AdmissionConfig{MaxInFlightBytes: 1, RetryAfter: -time.Second}); err == nil {
		t.Fatal("accepted negative retry-after")
	}
	c, err := NewAdmissionController(AdmissionConfig{MaxInFlightBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.MaxInFlightBytes != 100 || st.RetryAfterMillis != DefaultRetryAfterHint.Milliseconds() {
		t.Fatalf("defaults not applied: %+v", st)
	}
}

func TestAdmissionFastPath(t *testing.T) {
	c, _ := NewAdmissionController(AdmissionConfig{MaxInFlightBytes: 100})
	rel1, err := c.Acquire(1, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := c.Acquire(2, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().InFlightBytes; got != 100 {
		t.Fatalf("in-flight = %d, want 100", got)
	}
	rel1()
	rel2()
	if got := c.Stats().InFlightBytes; got != 0 {
		t.Fatalf("in-flight after release = %d, want 0", got)
	}
	if got := c.Stats().Admitted; got != 2 {
		t.Fatalf("admitted = %d, want 2", got)
	}
}

func TestAdmissionQueuesThenGrants(t *testing.T) {
	c, _ := NewAdmissionController(AdmissionConfig{MaxInFlightBytes: 100})
	rel, err := c.Acquire(1, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan struct{})
	go func() {
		rel2, err := c.Acquire(2, 50, nil)
		if err != nil {
			t.Error(err)
			close(granted)
			return
		}
		close(granted)
		rel2()
	}()
	select {
	case <-granted:
		t.Fatal("second acquire should have queued")
	case <-time.After(20 * time.Millisecond):
	}
	if got := c.Stats().QueueDepth; got != 1 {
		t.Fatalf("queue depth = %d, want 1", got)
	}
	rel()
	select {
	case <-granted:
	case <-time.After(time.Second):
		t.Fatal("queued acquire never granted")
	}
	if got := c.Stats().Queued; got != 1 {
		t.Fatalf("queued counter = %d, want 1", got)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	c, _ := NewAdmissionController(AdmissionConfig{
		MaxInFlightBytes:  10,
		MaxQueuePerTenant: 2,
		RetryAfter:        25 * time.Millisecond,
	})
	rel, err := c.Acquire(1, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// Fill tenant 1's queue.
	var wg sync.WaitGroup
	cancel := make(chan struct{})
	defer close(cancel)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, err := c.Acquire(1, 5, cancel); err == nil {
				r()
			}
		}()
	}
	waitFor(t, func() bool { return c.Stats().QueueDepth == 2 })
	_, err = c.Acquire(1, 5, nil)
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("err = %v, want RetryAfterError", err)
	}
	if !errors.Is(err, ErrServerBusy) {
		t.Fatal("RetryAfterError must match ErrServerBusy")
	}
	if ra.Delay != 25*time.Millisecond || ra.Queued != 2 {
		t.Fatalf("hint %+v, want 25ms / 2 queued", ra)
	}
	// A different tenant still has queue room.
	done := make(chan struct{})
	go func() {
		if r, err := c.Acquire(2, 5, cancel); err == nil {
			r()
		}
		close(done)
	}()
	waitFor(t, func() bool { return c.Stats().QueueDepth == 3 })
	if got := c.Stats().Shed; got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	rel()
	wg.Wait()
	<-done
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	c, _ := NewAdmissionController(AdmissionConfig{MaxInFlightBytes: 10})
	rel, err := c.Acquire(1, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Acquire(2, 5, cancel)
		errCh <- err
	}()
	waitFor(t, func() bool { return c.Stats().QueueDepth == 1 })
	close(cancel)
	if err := <-errCh; !errors.Is(err, ErrClientClosed) {
		t.Fatalf("cancelled acquire err = %v", err)
	}
	if got := c.Stats().QueueDepth; got != 0 {
		t.Fatalf("queue depth after cancel = %d, want 0", got)
	}
	rel()
	// Budget intact: a full-budget acquire succeeds immediately.
	rel2, err := c.Acquire(3, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

func TestAdmissionOversizedRequestRunsAlone(t *testing.T) {
	c, _ := NewAdmissionController(AdmissionConfig{MaxInFlightBytes: 10})
	rel, err := c.Acquire(1, 1000, nil) // bigger than the whole budget
	if err != nil {
		t.Fatalf("idle oversized acquire failed: %v", err)
	}
	// While it runs, nothing else fits.
	granted := make(chan struct{})
	cancel := make(chan struct{})
	go func() {
		if r, err := c.Acquire(2, 1, cancel); err == nil {
			close(granted)
			r()
		}
	}()
	select {
	case <-granted:
		t.Fatal("acquire fit alongside oversized request")
	case <-time.After(20 * time.Millisecond):
	}
	rel()
	select {
	case <-granted:
	case <-time.After(time.Second):
		t.Fatal("queued request never granted after oversized release")
	}
	close(cancel)
}

func TestAdmissionWeightedGrantOrder(t *testing.T) {
	c, _ := NewAdmissionController(AdmissionConfig{
		MaxInFlightBytes: 10,
		Weight: func(tenant uint64) float64 {
			if tenant == 1 {
				return 4
			}
			return 1
		},
	})
	rel, err := c.Acquire(9, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Queue 4 requests for tenant 1 and 4 for tenant 2, then release one
	// byte-budget at a time and observe the grant order: weight 4 should
	// drain ~4x faster.
	var order []uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	ready := make(chan struct{}, 8)
	for i := 0; i < 4; i++ {
		for _, tenant := range []uint64{1, 2} {
			wg.Add(1)
			go func(tenant uint64) {
				defer wg.Done()
				ready <- struct{}{}
				r, err := c.Acquire(tenant, 10, nil)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				r()
			}(tenant)
		}
	}
	for i := 0; i < 8; i++ {
		<-ready
	}
	waitFor(t, func() bool { return c.Stats().QueueDepth == 8 })
	rel()
	wg.Wait()
	// With weights 4:1 and equal costs, tenant 1's virtual finish times
	// are 4x denser: the first half of grants should be mostly tenant 1.
	t1First := 0
	for _, tenant := range order[:4] {
		if tenant == 1 {
			t1First++
		}
	}
	if t1First < 3 {
		t.Fatalf("grant order %v: want tenant 1 to dominate the first half", order)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerShedsUnderAdmissionPressure drives a live server whose
// admission budget is pinned full: of 8 pipelined fetches, exactly one may
// wait in the tenant's queue (bound 1) and the other 7 must come back as
// typed ErrServerBusy carrying the configured hint — while the session
// survives and the queued fetch completes once the budget frees.
func TestServerShedsUnderAdmissionPressure(t *testing.T) {
	st := testStore(t, 16)
	adm, err := NewAdmissionController(AdmissionConfig{
		MaxInFlightBytes:  st.TotalBytes() / 16,
		MaxQueuePerTenant: 1,
		RetryAfter:        35 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, dial := startServer(t, ServerConfig{
		Store:     st,
		Pipeline:  pipeline.DefaultStandard(),
		Cores:     2,
		Admission: adm,
	})
	c := dial()

	// Pin the whole budget from outside so every fetch finds it exhausted.
	release, err := adm.Acquire(99, st.TotalBytes(), nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var ok, busy atomic.Int64
	var sawHint atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Fetch(ctx, uint32(i%16), 0, 1)
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrServerBusy):
				busy.Add(1)
				var ra *RetryAfterError
				if errors.As(err, &ra) && ra.Delay == 35*time.Millisecond {
					sawHint.Add(1)
				}
			default:
				t.Errorf("fetch %d: %v", i, err)
			}
		}(i)
	}
	// Exactly one fetch parks in the tenant queue; the other 7 shed.
	waitFor(t, func() bool { return adm.Stats().Shed == 7 })
	release()
	wg.Wait()

	if ok.Load() != 1 || busy.Load() != 7 {
		t.Fatalf("ok=%d busy=%d, want 1/7", ok.Load(), busy.Load())
	}
	if sawHint.Load() != busy.Load() {
		t.Fatalf("%d busy errors but %d carried the 35ms hint", busy.Load(), sawHint.Load())
	}
	if got := srv.Counters().ShedLoad.Load(); got != 7 {
		t.Fatalf("server ShedLoad = %d, want 7", got)
	}
	// The session is still healthy: a subsequent serial fetch succeeds.
	if _, err := c.Fetch(ctx, 3, 0, 2); err != nil {
		t.Fatalf("post-shed fetch on same session: %v", err)
	}
}

// TestReconnectingClientHonorsRetryAfter: a shed fetch retried through the
// reconnecting wrapper must succeed WITHOUT a reconnect, and must wait at
// least the server's hint before the retry.
func TestReconnectingClientHonorsRetryAfter(t *testing.T) {
	st := testStore(t, 4)
	adm, err := NewAdmissionController(AdmissionConfig{
		MaxInFlightBytes:  1,
		MaxQueuePerTenant: 1,
		RetryAfter:        30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, dial := startServer(t, ServerConfig{
		Store:     st,
		Pipeline:  pipeline.DefaultStandard(),
		Cores:     1,
		Admission: adm,
	})
	base := dial()
	// Occupy the whole budget so the wrapper's first attempt is shed, then
	// free it during the backoff window.
	release, err := adm.Acquire(99, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	blocker := make(chan struct{})
	go func() {
		// Keep tenant 42's queue full so the wrapper sheds instead of queueing.
		if r, err := adm.Acquire(42, 1, blocker); err == nil {
			r()
		}
	}()
	waitFor(t, func() bool { return adm.Stats().QueueDepth == 1 })

	rc, err := NewReconnectingWithPolicy(func() (*Client, error) {
		return base, nil
	}, RetryPolicy{Attempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond, Multiplier: 1, Jitter: -1}, simclock.Real())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(blocker)
		release()
	}()
	start := time.Now()
	if _, err := rc.Fetch(context.Background(), 1, 0, 1); err != nil {
		t.Fatalf("fetch through retry wrapper: %v", err)
	}
	if rc.Retries() != 0 {
		t.Fatalf("wrapper reconnected %d times on a healthy session", rc.Retries())
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("retry after %v, want >= server hint 30ms", elapsed)
	}
}
