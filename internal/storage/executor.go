package storage

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bufpool"
	"repro/internal/pipeline"
)

// Executor runs preprocessing prefixes on the storage node under a bounded
// core budget: at most Cores ops execute concurrently, so storage-side CPU
// contention shows up as queueing latency exactly as it does on a real box.
// A Slowdown factor > 1 models a storage node with weaker cores than the
// compute node (the paper's future-work heterogeneous-CPU scenario) by
// stretching each op's occupancy.
type Executor struct {
	pipe     *pipeline.Pipeline
	sem      chan struct{}
	slowdown float64
	counters *Counters
}

// ErrNoOffload is returned when a prefix execution is requested but the
// executor has zero cores (offloading disabled).
var ErrNoOffload = errors.New("storage: offloading disabled (0 cores)")

// NewExecutor builds an executor with the given core budget. cores == 0
// disables offloading; slowdown < 1 is rejected (a faster storage node is
// modeled as slowdown == 1 with more cores).
func NewExecutor(p *pipeline.Pipeline, cores int, slowdown float64, counters *Counters) (*Executor, error) {
	if p == nil {
		return nil, errors.New("storage: executor needs a pipeline")
	}
	if cores < 0 {
		return nil, fmt.Errorf("storage: negative core budget %d", cores)
	}
	if slowdown < 1 {
		return nil, fmt.Errorf("storage: slowdown %.2f < 1", slowdown)
	}
	if counters == nil {
		counters = &Counters{}
	}
	e := &Executor{pipe: p, slowdown: slowdown, counters: counters}
	if cores > 0 {
		e.sem = make(chan struct{}, cores)
	}
	return e, nil
}

// Cores returns the configured core budget.
func (e *Executor) Cores() int {
	if e.sem == nil {
		return 0
	}
	return cap(e.sem)
}

// RunPrefix executes ops [0, split) on raw bytes, holding one core for the
// duration. split == 0 returns the raw artifact without touching the core
// budget.
func (e *Executor) RunPrefix(raw []byte, split int, seed pipeline.Seed) (pipeline.Artifact, error) {
	if split < 0 || split > e.pipe.Len() {
		return pipeline.Artifact{}, fmt.Errorf("%w: split %d of %d ops", pipeline.ErrBadSplit, split, e.pipe.Len())
	}
	if split == 0 {
		return pipeline.RawArtifact(raw), nil
	}
	if e.sem == nil {
		return pipeline.Artifact{}, ErrNoOffload
	}
	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	start := time.Now()
	art, err := e.pipe.RunRange(pipeline.RawArtifact(raw), 0, split, seed)
	elapsed := time.Since(start)
	if e.slowdown > 1 {
		// Occupy the core for the extra time a slower CPU would need.
		extra := time.Duration(float64(elapsed) * (e.slowdown - 1))
		time.Sleep(extra)
		elapsed += extra
	}
	e.counters.CPUNanos.Add(uint64(elapsed.Nanoseconds()))
	if err != nil {
		return pipeline.Artifact{}, err
	}
	e.counters.OpsExecuted.Add(uint64(split))
	return art, nil
}

// RunPrefixEncoded runs ops [0, split) and encodes the result straight into
// a pool-backed buffer, releasing the artifact's pixel/tensor scratch before
// returning. This keeps the server's per-request path allocation-free at
// steady state. The caller owns the encoded bytes and returns them with
// bufpool.PutBytes — the server's writer goroutine does so via wire.Recycle
// once the frame is on the wire.
func (e *Executor) RunPrefixEncoded(raw []byte, split int, seed pipeline.Seed) ([]byte, error) {
	art, err := e.RunPrefix(raw, split, seed)
	if err != nil {
		return nil, err
	}
	buf := bufpool.GetBytes(art.WireSize())[:0]
	encoded, err := art.AppendEncode(buf)
	art.Release()
	if err != nil {
		bufpool.PutBytes(buf)
		return nil, err
	}
	return encoded, nil
}
