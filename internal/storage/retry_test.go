package storage

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pipeline"
)

// flakyDialer returns a dial function whose connections fail after budget
// bytes.
func flakyDialer(t testing.TB, l *netsim.PipeListener, budget int64) func() (*Client, error) {
	t.Helper()
	return func() (*Client, error) {
		conn, err := l.Dial()
		if err != nil {
			return nil, err
		}
		return NewClient(netsim.Flaky(conn, budget), 3)
	}
}

func startRetryServer(t testing.TB, n, cores int) *netsim.PipeListener {
	t.Helper()
	st := testStore(t, n)
	srv, err := NewServer(ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: cores})
	if err != nil {
		t.Fatal(err)
	}
	l := netsim.NewPipeListener()
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l
}

func TestReconnectingValidation(t *testing.T) {
	l := startRetryServer(t, 1, 1)
	if _, err := NewReconnecting(nil, 3, 0, nil); err == nil {
		t.Fatal("accepted nil dialer")
	}
	if _, err := NewReconnecting(flakyDialer(t, l, 1<<20), 0, 0, nil); err == nil {
		t.Fatal("accepted attempts < 1")
	}
	failing := func() (*Client, error) { return nil, errors.New("refused") }
	if _, err := NewReconnecting(failing, 3, 0, nil); err == nil {
		t.Fatal("eager dial failure not surfaced")
	}
}

func TestReconnectingSurvivesConnectionDeath(t *testing.T) {
	l := startRetryServer(t, 4, 1)
	// Each connection dies after ~40 KB; raw samples here are a few KB, so
	// several fetches succeed per connection before a redial is needed.
	rc, err := NewReconnecting(flakyDialer(t, l, 40<<10), 5, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rc.NumSamples() != 4 || rc.DatasetName() == "" {
		t.Fatalf("handshake facts: %d %q", rc.NumSamples(), rc.DatasetName())
	}
	for k := 0; k < 40; k++ {
		res, err := rc.Fetch(context.Background(), uint32(k%4), 0, 1)
		if err != nil {
			t.Fatalf("fetch %d: %v", k, err)
		}
		if res.Artifact.Kind != pipeline.KindRaw {
			t.Fatalf("fetch %d kind %s", k, res.Artifact.Kind)
		}
	}
	if rc.Retries() == 0 {
		t.Fatal("no reconnects despite flaky links")
	}
	if _, err := rc.Stats(context.Background()); err != nil {
		t.Fatalf("stats over flaky link: %v", err)
	}
}

func TestReconnectingGivesUpEventually(t *testing.T) {
	l := startRetryServer(t, 1, 1)
	// Budget so small even the handshake+one fetch cannot complete on
	// retries: handshake succeeds (small), first fetch dies, every redial
	// dies again.
	rc, err := NewReconnecting(flakyDialer(t, l, 60), 3, 0, nil)
	if err != nil {
		// The eager dial may itself fail with this budget; that's a valid
		// outcome for this test.
		return
	}
	defer rc.Close()
	if _, err := rc.Fetch(context.Background(), 0, 0, 1); err == nil {
		t.Fatal("fetch succeeded with an impossible byte budget")
	}
}

func TestReconnectingDoesNotRetryPermanentErrors(t *testing.T) {
	l := startRetryServer(t, 2, 1)
	rc, err := NewReconnecting(flakyDialer(t, l, 1<<30), 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.Fetch(context.Background(), 99, 0, 1); !errors.Is(err, ErrSampleMissing) {
		t.Fatalf("missing sample err = %v", err)
	}
	if rc.Retries() != 0 {
		t.Fatalf("%d retries for a permanent error", rc.Retries())
	}
	if _, err := rc.Fetch(context.Background(), 0, 6, 1); !errors.Is(err, ErrBadSplitReq) {
		t.Fatalf("bad split err = %v", err)
	}
}

func TestReconnectingClosedOperations(t *testing.T) {
	l := startRetryServer(t, 1, 1)
	rc, err := NewReconnecting(flakyDialer(t, l, 1<<30), 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Fetch(context.Background(), 0, 0, 1); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("fetch after close = %v", err)
	}
}

func TestReconnectingBatchFetch(t *testing.T) {
	l := startRetryServer(t, 4, 2)
	rc, err := NewReconnecting(flakyDialer(t, l, 100<<10), 6, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for k := 0; k < 10; k++ {
		res, err := rc.FetchBatch(context.Background(), []uint32{0, 1, 2, 3}, []int{0, 0, 2, 2}, uint64(k))
		if err != nil {
			t.Fatalf("batch %d: %v", k, err)
		}
		if len(res) != 4 {
			t.Fatalf("batch %d returned %d items", k, len(res))
		}
	}
}

func TestFlakyConnInjectsFailure(t *testing.T) {
	l := netsim.NewPipeListener()
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	fc := netsim.Flaky(conn, 100)
	if _, err := fc.Write(make([]byte, 60)); err != nil {
		t.Fatalf("first write within budget failed: %v", err)
	}
	if _, err := fc.Write(make([]byte, 60)); !errors.Is(err, netsim.ErrInjectedFailure) {
		t.Fatalf("over-budget write err = %v", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, netsim.ErrInjectedFailure) {
		t.Fatalf("read after failure err = %v", err)
	}
}
