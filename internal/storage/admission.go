package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wfq"
)

// ErrServerBusy is the sentinel every retry-after rejection matches via
// errors.Is: the server is shedding load and the request should be retried
// after the server's hint, on the same (healthy) session.
var ErrServerBusy = errors.New("storage: server shedding load")

// RetryAfterError is the typed client-side form of a wire.RetryAfter
// rejection. It matches ErrServerBusy with errors.Is.
type RetryAfterError struct {
	// Delay is the server's minimum backoff hint.
	Delay time.Duration
	// Queued is the server-side admission-queue depth at rejection time.
	Queued int
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("storage: server shedding load (retry after %v, %d queued)", e.Delay, e.Queued)
}

// Is reports that a RetryAfterError is an ErrServerBusy.
func (e *RetryAfterError) Is(target error) bool { return target == ErrServerBusy }

// Admission defaults.
const (
	// DefaultAdmissionQueue bounds each tenant's admission queue when
	// AdmissionConfig.MaxQueuePerTenant is zero.
	DefaultAdmissionQueue = 256
	// DefaultRetryAfterHint is the backoff hint sent with rejections when
	// AdmissionConfig.RetryAfter is zero.
	DefaultRetryAfterHint = 50 * time.Millisecond
)

// AdmissionConfig configures an AdmissionController.
type AdmissionConfig struct {
	// MaxInFlightBytes is the global in-flight byte budget across every
	// connection (and every server sharing the controller). Required > 0.
	MaxInFlightBytes int64
	// MaxQueuePerTenant bounds each tenant's admission queue; requests
	// beyond the bound are rejected with a retry-after instead of queueing
	// (0 → DefaultAdmissionQueue).
	MaxQueuePerTenant int
	// RetryAfter is the backoff hint carried by rejections
	// (0 → DefaultRetryAfterHint).
	RetryAfter time.Duration
	// Weight maps a tenant (wire JobID) to its fair-share weight in the
	// admission queue; nil or non-positive results mean weight 1.
	Weight func(tenant uint64) float64
}

// AdmissionStats is a point-in-time controller snapshot for /stats.
type AdmissionStats struct {
	MaxInFlightBytes int64  `json:"max_in_flight_bytes"`
	InFlightBytes    int64  `json:"in_flight_bytes"`
	QueueDepth       int    `json:"queue_depth"`
	Admitted         uint64 `json:"admitted"`
	Queued           uint64 `json:"queued"`
	Shed             uint64 `json:"shed"`
	RetryAfterMillis int64  `json:"retry_after_ms"`
}

// AdmissionController is the storage tier's global admission gate: beyond
// the per-connection MaxInFlight semaphore, it bounds the total bytes in
// flight across ALL connections (and across every server sharing the
// controller — cluster.Launch threads one controller through all shards),
// queues excess requests per tenant in weighted fair order, and sheds load
// with retry-after rejections once a tenant's queue is full. Shedding keeps
// tail latency bounded under open-loop overload: the alternative —
// unbounded queueing — takes p99 to the queue length.
type AdmissionController struct {
	maxBytes   int64
	maxQueue   int
	retryAfter time.Duration
	weight     func(uint64) float64

	mu       sync.Mutex
	inFlight int64
	queue    *wfq.Queue // Item.Value = chan struct{} (closed on grant)

	admitted atomic.Uint64
	queuedN  atomic.Uint64
	shed     atomic.Uint64
}

// NewAdmissionController validates cfg and builds a controller.
func NewAdmissionController(cfg AdmissionConfig) (*AdmissionController, error) {
	if cfg.MaxInFlightBytes <= 0 {
		return nil, errors.New("storage: admission needs MaxInFlightBytes > 0")
	}
	if cfg.MaxQueuePerTenant < 0 {
		return nil, errors.New("storage: negative admission queue bound")
	}
	if cfg.RetryAfter < 0 {
		return nil, errors.New("storage: negative retry-after hint")
	}
	c := &AdmissionController{
		maxBytes:   cfg.MaxInFlightBytes,
		maxQueue:   cfg.MaxQueuePerTenant,
		retryAfter: cfg.RetryAfter,
		weight:     cfg.Weight,
		queue:      wfq.New(),
	}
	if c.maxQueue == 0 {
		c.maxQueue = DefaultAdmissionQueue
	}
	if c.retryAfter == 0 {
		c.retryAfter = DefaultRetryAfterHint
	}
	return c, nil
}

// RetryAfterHint returns the backoff hint rejections carry.
func (c *AdmissionController) RetryAfterHint() time.Duration { return c.retryAfter }

// Acquire admits bytes of work for tenant, blocking in the tenant's
// weighted queue while the global budget is exhausted. It returns a release
// function the caller MUST run when the work completes. If the tenant's
// queue is full the request is shed immediately with a *RetryAfterError
// (matching ErrServerBusy); if cancel closes while queued, Acquire returns
// ErrClientClosed.
//
// A request larger than the whole budget is still admitted once the
// controller is otherwise idle — oversized work degrades to serial
// execution instead of deadlocking.
func (c *AdmissionController) Acquire(tenant uint64, bytes int64, cancel <-chan struct{}) (func(), error) {
	if bytes < 1 {
		bytes = 1
	}
	c.mu.Lock()
	if c.fitsLocked(bytes) && c.queue.Len() == 0 {
		c.inFlight += bytes
		c.mu.Unlock()
		c.admitted.Add(1)
		return c.releaseFunc(bytes), nil
	}
	if c.queue.TenantLen(tenant) >= c.maxQueue {
		depth := c.queue.Len()
		c.mu.Unlock()
		c.shed.Add(1)
		return nil, &RetryAfterError{Delay: c.retryAfter, Queued: depth}
	}
	w := 1.0
	if c.weight != nil {
		if got := c.weight(tenant); got > 0 {
			w = got
		}
	}
	grant := make(chan struct{})
	item := c.queue.Push(tenant, w, float64(bytes), grant)
	c.mu.Unlock()
	c.queuedN.Add(1)

	select {
	case <-grant:
		c.admitted.Add(1)
		return c.releaseFunc(bytes), nil
	case <-cancel:
		c.mu.Lock()
		removed := c.queue.Remove(item)
		c.mu.Unlock()
		if !removed {
			// The grant raced the cancellation: the budget was already
			// charged, so give it straight back.
			<-grant
			c.releaseFunc(bytes)()
		}
		return nil, ErrClientClosed
	}
}

// fitsLocked reports whether bytes fit the budget right now. An oversized
// request fits only a fully idle controller.
func (c *AdmissionController) fitsLocked(bytes int64) bool {
	if c.inFlight == 0 {
		return true
	}
	return c.inFlight+bytes <= c.maxBytes
}

// releaseFunc returns the (idempotent-unsafe, call-once) release closure
// for an admitted request.
func (c *AdmissionController) releaseFunc(bytes int64) func() {
	return func() {
		c.mu.Lock()
		c.inFlight -= bytes
		// Wake queued waiters in weighted-fair order while their bytes fit;
		// the budget is charged here, before the waiter resumes, so a
		// snapshot never undercounts in-flight bytes.
		for {
			it := c.queue.Peek()
			if it == nil {
				break
			}
			if !c.fitsLocked(int64(it.Cost)) {
				break
			}
			c.queue.Pop()
			c.inFlight += int64(it.Cost)
			close(it.Value.(chan struct{}))
		}
		c.mu.Unlock()
	}
}

// Stats snapshots the controller's counters.
func (c *AdmissionController) Stats() AdmissionStats {
	c.mu.Lock()
	inFlight := c.inFlight
	depth := c.queue.Len()
	c.mu.Unlock()
	return AdmissionStats{
		MaxInFlightBytes: c.maxBytes,
		InFlightBytes:    inFlight,
		QueueDepth:       depth,
		Admitted:         c.admitted.Load(),
		Queued:           c.queuedN.Load(),
		Shed:             c.shed.Load(),
		RetryAfterMillis: c.retryAfter.Milliseconds(),
	}
}
