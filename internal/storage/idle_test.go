package storage

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/pipeline"
)

func TestServerRejectsNegativeIdleTimeout(t *testing.T) {
	st := testStore(t, 1)
	if _, err := NewServer(ServerConfig{
		Store: st, Pipeline: pipeline.DefaultStandard(), IdleTimeout: -time.Second,
	}); err == nil {
		t.Fatal("accepted negative idle timeout")
	}
}

// TestIdleTimeoutDropsSilentClients: a handshaked-but-silent client is
// disconnected; an active client is not.
func TestIdleTimeoutDropsSilentClients(t *testing.T) {
	st := testStore(t, 2)
	srv, err := NewServer(ServerConfig{
		Store:       st,
		Pipeline:    pipeline.DefaultStandard(),
		Cores:       1,
		IdleTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	silent, err := Dial(l.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	active, err := Dial(l.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer active.Close()

	// Keep the active client busy until the server demonstrably reaps the
	// silent one — the connection gauge dropping to 1 is the condition, so
	// the test waits on observable state, not on a wall-clock guess.
	ctr := srv.Counters()
	deadline := time.Now().Add(10 * time.Second)
	for ctr.Connections.Load() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("idle reaper never fired: %d connections open", ctr.Connections.Load())
		}
		if _, err := active.Fetch(context.Background(), 0, 0, 1); err != nil {
			t.Fatalf("active client dropped: %v", err)
		}
	}

	// The silent client's connection must be gone by now.
	if _, err := silent.Fetch(context.Background(), 0, 0, 1); err == nil {
		t.Fatal("silent client survived the idle timeout")
	}
}
