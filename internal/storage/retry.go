package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/wire"
)

// ReconnectingClient wraps a dialer with transparent reconnect-and-retry:
// when an operation fails on the current connection, it is closed, a fresh
// connection is dialed (with backoff), and the operation retried. Fetches
// are idempotent — augmentation seeds depend only on (job, epoch, sample) —
// so retrying is always safe.
type ReconnectingClient struct {
	dial     func() (*Client, error)
	attempts int
	backoff  time.Duration
	clock    simclock.Clock

	mu      sync.Mutex
	current *Client
	closed  bool
	retries int64
}

// NewReconnecting dials eagerly and returns a client that survives
// connection failures. attempts is the per-operation try count (≥ 1);
// backoff is the pause before each redial.
func NewReconnecting(dial func() (*Client, error), attempts int, backoff time.Duration, clock simclock.Clock) (*ReconnectingClient, error) {
	if dial == nil {
		return nil, errors.New("storage: nil dialer")
	}
	if attempts < 1 {
		return nil, fmt.Errorf("storage: attempts %d < 1", attempts)
	}
	if clock == nil {
		clock = simclock.Real()
	}
	first, err := dial()
	if err != nil {
		return nil, err
	}
	return &ReconnectingClient{
		dial:     dial,
		attempts: attempts,
		backoff:  backoff,
		clock:    clock,
		current:  first,
	}, nil
}

// Retries reports how many reconnects have happened.
func (r *ReconnectingClient) Retries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// DatasetName returns the dataset name from the live connection.
func (r *ReconnectingClient) DatasetName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current.DatasetName()
}

// NumSamples returns the dataset size from the live connection.
func (r *ReconnectingClient) NumSamples() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current.NumSamples()
}

// withRetry runs op against the current client, reconnecting between
// attempts. Application-level rejections (missing sample, bad split) are
// returned immediately — only transport errors trigger a retry.
func (r *ReconnectingClient) withRetry(op func(*Client) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClientClosed
	}
	var lastErr error
	for try := 0; try < r.attempts; try++ {
		if try > 0 {
			r.current.Close()
			if r.backoff > 0 {
				r.clock.Sleep(r.backoff)
			}
			next, err := r.dial()
			if err != nil {
				lastErr = err
				continue
			}
			r.current = next
			r.retries++
		}
		err := op(r.current)
		if err == nil {
			return nil
		}
		if isPermanent(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("storage: giving up after %d attempts: %w", r.attempts, lastErr)
}

// isPermanent reports whether the server rejected the request itself (no
// point retrying).
func isPermanent(err error) bool {
	return errors.Is(err, ErrSampleMissing) ||
		errors.Is(err, ErrBadSplitReq) ||
		errors.Is(err, ErrFetchFailed)
}

// Fetch is Client.Fetch with reconnect-and-retry.
func (r *ReconnectingClient) Fetch(sample uint32, split int, epoch uint64) (FetchResult, error) {
	var out FetchResult
	err := r.withRetry(func(c *Client) error {
		res, err := c.Fetch(sample, split, epoch)
		if err != nil {
			return err
		}
		out = res
		return nil
	})
	return out, err
}

// FetchBatch is Client.FetchBatch with reconnect-and-retry.
func (r *ReconnectingClient) FetchBatch(samples []uint32, splits []int, epoch uint64) ([]FetchResult, error) {
	var out []FetchResult
	err := r.withRetry(func(c *Client) error {
		res, err := c.FetchBatch(samples, splits, epoch)
		if err != nil {
			return err
		}
		out = res
		return nil
	})
	return out, err
}

// Stats is Client.Stats with reconnect-and-retry.
func (r *ReconnectingClient) Stats() (out wire.StatsResp, err error) {
	err = r.withRetry(func(c *Client) error {
		s, err := c.Stats()
		if err != nil {
			return err
		}
		out = s
		return nil
	})
	return out, err
}

// Close shuts the live connection; idempotent.
func (r *ReconnectingClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	return r.current.Close()
}
