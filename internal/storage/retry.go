package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/wire"
)

// ReconnectingClient wraps a dialer with transparent reconnect-and-retry:
// when an operation fails on the current session, the session is torn down,
// a fresh one is dialed (with backoff), and the operation retried. Fetches
// are idempotent — augmentation seeds depend only on (job, epoch, sample) —
// so retrying is always safe.
//
// The wrapper preserves the session's pipelining: no lock is held while an
// operation is in flight, so concurrent callers share one multiplexed
// session. Reconnects are single-flight via a generation counter — when
// several in-flight operations fail on the same broken session, only the
// first tears it down and the rest simply retry on the replacement.
type ReconnectingClient struct {
	dial     func() (*Client, error)
	attempts int
	backoff  time.Duration
	clock    simclock.Clock

	// Handshake facts cached at construction so they remain available
	// while the session is down between retries.
	datasetName string
	numSamples  int

	mu      sync.Mutex
	current *Client // nil while broken, until the next acquire redials
	gen     int64
	closed  bool
	retries int64
}

// NewReconnecting dials eagerly and returns a client that survives
// connection failures. attempts is the per-operation try count (≥ 1);
// backoff is the pause before each redial.
func NewReconnecting(dial func() (*Client, error), attempts int, backoff time.Duration, clock simclock.Clock) (*ReconnectingClient, error) {
	if dial == nil {
		return nil, errors.New("storage: nil dialer")
	}
	if attempts < 1 {
		return nil, fmt.Errorf("storage: attempts %d < 1", attempts)
	}
	if clock == nil {
		clock = simclock.Real()
	}
	first, err := dial()
	if err != nil {
		return nil, err
	}
	return &ReconnectingClient{
		dial:        dial,
		attempts:    attempts,
		backoff:     backoff,
		clock:       clock,
		datasetName: first.DatasetName(),
		numSamples:  first.NumSamples(),
		current:     first,
	}, nil
}

// Retries reports how many reconnects have happened.
func (r *ReconnectingClient) Retries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// DatasetName returns the dataset name from the original handshake.
func (r *ReconnectingClient) DatasetName() string { return r.datasetName }

// NumSamples returns the dataset size from the original handshake.
func (r *ReconnectingClient) NumSamples() int { return r.numSamples }

// acquire returns the live session and its generation, redialing if the
// previous one was invalidated. Dialing happens under the lock, so exactly
// one caller redials while the rest wait for the result.
func (r *ReconnectingClient) acquire() (*Client, int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, 0, ErrClientClosed
	}
	if r.current != nil {
		return r.current, r.gen, nil
	}
	if r.backoff > 0 {
		r.clock.Sleep(r.backoff)
	}
	next, err := r.dial()
	if err != nil {
		return nil, 0, err
	}
	r.current = next
	r.retries++
	return r.current, r.gen, nil
}

// invalidate tears down the session a failed operation ran on — but only if
// no other caller already did (the generation check makes teardown
// single-flight across concurrent failures).
func (r *ReconnectingClient) invalidate(gen int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.gen != gen || r.current == nil {
		return
	}
	r.current.Close()
	r.current = nil
	r.gen++
}

// withRetry runs op against the current session, reconnecting between
// attempts. Application-level rejections (missing sample, bad split) and
// caller cancellation are returned immediately — only transport-level
// errors trigger a retry.
func (r *ReconnectingClient) withRetry(ctx context.Context, op func(*Client) error) error {
	var lastErr error
	for try := 0; try < r.attempts; try++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		c, gen, err := r.acquire()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return err
			}
			lastErr = err
			continue
		}
		err = op(c)
		if err == nil {
			return nil
		}
		if isPermanent(err) || errors.Is(err, context.Canceled) {
			return err
		}
		lastErr = err
		r.invalidate(gen)
	}
	return fmt.Errorf("storage: giving up after %d attempts: %w", r.attempts, lastErr)
}

// isPermanent reports whether the server rejected the request itself (no
// point retrying).
func isPermanent(err error) bool {
	return errors.Is(err, ErrSampleMissing) ||
		errors.Is(err, ErrBadSplitReq) ||
		errors.Is(err, ErrFetchFailed)
}

// Fetch is Client.Fetch with reconnect-and-retry.
func (r *ReconnectingClient) Fetch(ctx context.Context, sample uint32, split int, epoch uint64) (FetchResult, error) {
	var out FetchResult
	err := r.withRetry(ctx, func(c *Client) error {
		res, err := c.Fetch(ctx, sample, split, epoch)
		if err != nil {
			return err
		}
		out = res
		return nil
	})
	return out, err
}

// errItemsPending marks a batch round that succeeded at the transport level
// but left items needing a re-request; it drives the retry loop.
var errItemsPending = errors.New("storage: batch items pending retry")

// FetchBatch is Client.FetchBatch with reconnect-and-retry. Across attempts
// only the samples that failed transiently are re-requested; samples already
// fetched keep their results. Items that still fail after all attempts carry
// their error in FetchResult.Err (the call itself returns nil), matching the
// per-item contract of Client.FetchBatch.
func (r *ReconnectingClient) FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]FetchResult, error) {
	if len(samples) == 0 {
		return nil, errors.New("storage: empty batch")
	}
	if len(samples) != len(splits) {
		return nil, fmt.Errorf("storage: %d samples but %d splits", len(samples), len(splits))
	}
	out := make([]FetchResult, len(samples))
	pending := make([]int, len(samples)) // indices into samples still to fetch
	for i := range pending {
		pending[i] = i
	}
	err := r.withRetry(ctx, func(c *Client) error {
		subSamples := make([]uint32, len(pending))
		subSplits := make([]int, len(pending))
		for j, idx := range pending {
			subSamples[j] = samples[idx]
			subSplits[j] = splits[idx]
		}
		res, err := c.FetchBatch(ctx, subSamples, subSplits, epoch)
		if err != nil {
			return err
		}
		var remaining []int
		for j, item := range res {
			idx := pending[j]
			out[idx] = item
			if item.Err != nil && !isPermanent(item.Err) {
				remaining = append(remaining, idx)
			}
		}
		pending = remaining
		if len(pending) > 0 {
			return fmt.Errorf("%w: %d of %d", errItemsPending, len(pending), len(samples))
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, errItemsPending) {
			// Every still-pending item carries its own Err from the last
			// round; per-item semantics say the call itself succeeds.
			return out, nil
		}
		return nil, err
	}
	return out, nil
}

// Stats is Client.Stats with reconnect-and-retry.
func (r *ReconnectingClient) Stats(ctx context.Context) (out wire.StatsResp, err error) {
	err = r.withRetry(ctx, func(c *Client) error {
		s, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		out = s
		return nil
	})
	return out, err
}

// Close shuts the live session; idempotent.
func (r *ReconnectingClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.current != nil {
		return r.current.Close()
	}
	return nil
}
