package storage

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/wire"
)

// Defaults for the zero-value RetryPolicy.
const (
	DefaultRetryAttempts = 4
	DefaultRetryBase     = 10 * time.Millisecond
	DefaultRetryMax      = 2 * time.Second
	DefaultRetryMult     = 2.0
	DefaultRetryJitter   = 0.2
)

// RetryPolicy is a per-request retry budget with jittered exponential
// backoff. The zero value resolves to sane defaults (Normalized documents
// them); a negative BaseBackoff, MaxBackoff, or Jitter explicitly disables
// that knob, which is how "retry immediately, no jitter" is spelled.
type RetryPolicy struct {
	// Attempts is the per-operation try budget (0 → 4). The first try
	// counts, so Attempts=1 means no retries.
	Attempts int
	// BaseBackoff is the pause before the first retry (0 → 10ms, <0 → none).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 → 2s, <0 → no pause cap
	// beyond BaseBackoff).
	MaxBackoff time.Duration
	// Multiplier grows the pause between consecutive retries (0 → 2.0;
	// values below 1 clamp to 1, i.e. constant backoff).
	Multiplier float64
	// Jitter spreads each pause uniformly across ±Jitter·pause to keep
	// concurrent retriers from stampeding in lockstep (0 → 0.2, <0 → none,
	// >1 clamps to 1).
	Jitter float64
}

// Normalized resolves zero fields to defaults and clamps out-of-range
// values. Backoff and the retry loop always operate on a normalized policy.
func (p RetryPolicy) Normalized() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetryAttempts
	}
	switch {
	case p.BaseBackoff == 0:
		p.BaseBackoff = DefaultRetryBase
	case p.BaseBackoff < 0:
		p.BaseBackoff = 0
	}
	switch {
	case p.MaxBackoff == 0:
		p.MaxBackoff = DefaultRetryMax
	case p.MaxBackoff < 0:
		p.MaxBackoff = 0
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	switch {
	case p.Multiplier == 0:
		p.Multiplier = DefaultRetryMult
	case p.Multiplier < 1:
		p.Multiplier = 1
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = DefaultRetryJitter
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// Backoff returns the pause before retry number retry (1-based: retry 1
// follows the first failed attempt). u in [0,1) supplies the jitter draw, so
// the function stays pure and table-testable; the result always lies within
// ±Jitter of the unjittered exponential value, capped at MaxBackoff.
func (p RetryPolicy) Backoff(retry int, u float64) time.Duration {
	p = p.Normalized()
	if retry < 1 || p.BaseBackoff == 0 {
		return 0
	}
	d := float64(p.BaseBackoff)
	max := float64(p.MaxBackoff)
	for i := 1; i < retry && d < max; i++ {
		d *= p.Multiplier
	}
	if d > max {
		d = max
	}
	d *= 1 + p.Jitter*(2*u-1)
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// sleepCtx pauses for d on clock, aborting early with ctx's error if the
// caller cancels mid-backoff.
func sleepCtx(ctx context.Context, clock simclock.Clock, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	select {
	case <-clock.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ReconnectingClient wraps a dialer with transparent reconnect-and-retry:
// when an operation fails on the current session, the session is torn down,
// a fresh one is dialed (with backoff), and the operation retried. Fetches
// are idempotent — augmentation seeds depend only on (job, epoch, sample) —
// so retrying is always safe.
//
// The wrapper preserves the session's pipelining: no lock is held while an
// operation is in flight, so concurrent callers share one multiplexed
// session. Reconnects are single-flight via a generation counter — when
// several in-flight operations fail on the same broken session, only the
// first tears it down and the rest simply retry on the replacement.
type ReconnectingClient struct {
	dial   func() (*Client, error)
	policy RetryPolicy // always normalized
	clock  simclock.Clock

	// Handshake facts cached at construction so they remain available
	// while the session is down between retries.
	datasetName string
	numSamples  int

	mu          sync.Mutex
	current     *Client // nil while broken, until the next acquire redials
	gen         int64
	closed      bool
	retries     int64
	rng         *rand.Rand // jitter draws, guarded by mu
	planVersion uint32     // re-stamped onto every redialed session
}

// NewReconnecting dials eagerly and returns a client that survives
// connection failures. attempts is the per-operation try count (≥ 1);
// backoff is the constant pause before each redial (no growth, no jitter).
// For jittered exponential backoff use NewReconnectingWithPolicy.
func NewReconnecting(dial func() (*Client, error), attempts int, backoff time.Duration, clock simclock.Clock) (*ReconnectingClient, error) {
	if attempts < 1 {
		return nil, fmt.Errorf("storage: attempts %d < 1", attempts)
	}
	if backoff <= 0 {
		backoff = -1 // explicit "no pause", not "use the default"
	}
	return NewReconnectingWithPolicy(dial, RetryPolicy{
		Attempts:    attempts,
		BaseBackoff: backoff,
		MaxBackoff:  backoff,
		Multiplier:  1,
		Jitter:      -1,
	}, clock)
}

// NewReconnectingWithPolicy dials eagerly and returns a client whose retry
// loop follows policy (zero fields resolve to defaults, see RetryPolicy).
func NewReconnectingWithPolicy(dial func() (*Client, error), policy RetryPolicy, clock simclock.Clock) (*ReconnectingClient, error) {
	if dial == nil {
		return nil, errors.New("storage: nil dialer")
	}
	if clock == nil {
		clock = simclock.Real()
	}
	first, err := dial()
	if err != nil {
		return nil, err
	}
	p := policy.Normalized()
	return &ReconnectingClient{
		dial:        dial,
		policy:      p,
		clock:       clock,
		datasetName: first.DatasetName(),
		numSamples:  first.NumSamples(),
		current:     first,
		// The jitter stream is seeded from the policy shape only, so runs
		// are reproducible given the same call sequence; jitter spreads
		// concurrent retriers, it is not a correctness input.
		rng: rand.New(rand.NewPCG(uint64(p.Attempts)<<32^uint64(p.BaseBackoff), uint64(p.MaxBackoff))),
	}, nil
}

// Policy returns the client's normalized retry policy.
func (r *ReconnectingClient) Policy() RetryPolicy { return r.policy }

// Retries reports how many reconnects have happened.
func (r *ReconnectingClient) Retries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// DatasetName returns the dataset name from the original handshake.
func (r *ReconnectingClient) DatasetName() string { return r.datasetName }

// NumSamples returns the dataset size from the original handshake.
func (r *ReconnectingClient) NumSamples() int { return r.numSamples }

// SetPlanVersion implements PlanVersioner: the version is forwarded to the
// live session and re-applied to every session dialed after a reconnect, so
// a mid-run redial never silently reverts fetches to an older stamp.
func (r *ReconnectingClient) SetPlanVersion(v uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.planVersion = v
	if r.current != nil {
		r.current.SetPlanVersion(v)
	}
}

// acquire returns the live session and its generation, redialing if the
// previous one was invalidated. Dialing happens under the lock, so exactly
// one caller redials while the rest wait for the result.
func (r *ReconnectingClient) acquire() (*Client, int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, 0, ErrClientClosed
	}
	if r.current != nil {
		return r.current, r.gen, nil
	}
	next, err := r.dial()
	if err != nil {
		return nil, 0, err
	}
	next.SetPlanVersion(r.planVersion)
	r.current = next
	r.retries++
	return r.current, r.gen, nil
}

// invalidate tears down the session a failed operation ran on — but only if
// no other caller already did (the generation check makes teardown
// single-flight across concurrent failures).
func (r *ReconnectingClient) invalidate(gen int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.gen != gen || r.current == nil {
		return
	}
	r.current.Close()
	r.current = nil
	r.gen++
}

// withRetry runs op against the current session, reconnecting between
// attempts with jittered exponential backoff. Application-level rejections
// (missing sample, bad split) and caller cancellation are returned
// immediately — only transport-level errors trigger a retry. Checksum
// failures (wire.ErrChecksum) are transport-level by construction: a
// corrupted frame never decodes into a wrong result, it tears the session
// down and lands here as a retryable error.
//
// Admission-control rejections (ErrServerBusy / RetryAfterError) are the
// third kind: retryable, but on a HEALTHY session. They never tear the
// connection down — reconnect stampedes are exactly what a shedding server
// doesn't need — and the next attempt waits at least the server's
// retry-after hint (the policy backoff still applies when larger).
func (r *ReconnectingClient) withRetry(ctx context.Context, op func(*Client) error) error {
	var lastErr error
	var hint time.Duration // server's retry-after ask, if any
	for try := 0; try < r.policy.Attempts; try++ {
		if try > 0 {
			pause := r.policy.Backoff(try, r.jitterDraw())
			if hint > pause {
				pause = hint
			}
			hint = 0
			if err := sleepCtx(ctx, r.clock, pause); err != nil {
				return fmt.Errorf("storage: %w during retry backoff (last error: %v)", err, lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		c, gen, err := r.acquire()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return err
			}
			lastErr = err
			continue
		}
		err = op(c)
		if err == nil {
			return nil
		}
		if isPermanent(err) || errors.Is(err, context.Canceled) {
			return err
		}
		lastErr = err
		var ra *RetryAfterError
		if errors.As(err, &ra) {
			hint = ra.Delay
			continue
		}
		r.invalidate(gen)
	}
	return fmt.Errorf("storage: giving up after %d attempts: %w", r.policy.Attempts, lastErr)
}

// jitterDraw returns the next uniform draw in [0,1) for backoff jitter.
func (r *ReconnectingClient) jitterDraw() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// isPermanent reports whether the server rejected the request itself (no
// point retrying).
func isPermanent(err error) bool {
	return errors.Is(err, ErrSampleMissing) ||
		errors.Is(err, ErrBadSplitReq) ||
		errors.Is(err, ErrFetchFailed)
}

// Fetch is Client.Fetch with reconnect-and-retry.
func (r *ReconnectingClient) Fetch(ctx context.Context, sample uint32, split int, epoch uint64) (FetchResult, error) {
	var out FetchResult
	err := r.withRetry(ctx, func(c *Client) error {
		res, err := c.Fetch(ctx, sample, split, epoch)
		if err != nil {
			return err
		}
		out = res
		return nil
	})
	return out, err
}

// errItemsPending marks a batch round that succeeded at the transport level
// but left items needing a re-request; it drives the retry loop.
var errItemsPending = errors.New("storage: batch items pending retry")

// FetchBatch is Client.FetchBatch with reconnect-and-retry. Across attempts
// only the samples that failed transiently are re-requested; samples already
// fetched keep their results. Items that still fail after all attempts carry
// their error in FetchResult.Err (the call itself returns nil), matching the
// per-item contract of Client.FetchBatch.
func (r *ReconnectingClient) FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]FetchResult, error) {
	if len(samples) == 0 {
		return nil, errors.New("storage: empty batch")
	}
	if len(samples) != len(splits) {
		return nil, fmt.Errorf("storage: %d samples but %d splits", len(samples), len(splits))
	}
	out := make([]FetchResult, len(samples))
	pending := make([]int, len(samples)) // indices into samples still to fetch
	for i := range pending {
		pending[i] = i
	}
	err := r.withRetry(ctx, func(c *Client) error {
		subSamples := make([]uint32, len(pending))
		subSplits := make([]int, len(pending))
		for j, idx := range pending {
			subSamples[j] = samples[idx]
			subSplits[j] = splits[idx]
		}
		res, err := c.FetchBatch(ctx, subSamples, subSplits, epoch)
		if err != nil {
			return err
		}
		var remaining []int
		for j, item := range res {
			idx := pending[j]
			out[idx] = item
			if item.Err != nil && !isPermanent(item.Err) {
				remaining = append(remaining, idx)
			}
		}
		pending = remaining
		if len(pending) > 0 {
			return fmt.Errorf("%w: %d of %d", errItemsPending, len(pending), len(samples))
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, errItemsPending) {
			// Every still-pending item carries its own Err from the last
			// round; per-item semantics say the call itself succeeds.
			return out, nil
		}
		return nil, err
	}
	return out, nil
}

// Stats is Client.Stats with reconnect-and-retry.
func (r *ReconnectingClient) Stats(ctx context.Context) (out wire.StatsResp, err error) {
	err = r.withRetry(ctx, func(c *Client) error {
		s, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		out = s
		return nil
	})
	return out, err
}

// Close shuts the live session; idempotent.
func (r *ReconnectingClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.current != nil {
		return r.current.Close()
	}
	return nil
}
