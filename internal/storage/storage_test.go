package storage

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

func testImageSet(t testing.TB, n int) *dataset.ImageSet {
	t.Helper()
	s, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: "test-set", N: n, Seed: 99, MinDim: 32, MaxDim: 96,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testStore(t testing.TB, n int) *Store {
	t.Helper()
	st, err := FromImageSet(testImageSet(t, n))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// startServer runs a server over an in-memory listener and returns a dial
// function.
func startServer(t testing.TB, cfg ServerConfig) (*Server, func() *Client) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := netsim.NewPipeListener()
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	dial := func() *Client {
		conn, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClient(conn, 42)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	return srv, dial
}

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore("x", nil); err == nil {
		t.Fatal("accepted empty store")
	}
	if _, err := NewStore("x", [][]byte{{}}); err == nil {
		t.Fatal("accepted empty object")
	}
	st, err := NewStore("x", [][]byte{{1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if st.N() != 2 || st.TotalBytes() != 3 || st.Name() != "x" {
		t.Fatalf("store facts: N=%d total=%d name=%q", st.N(), st.TotalBytes(), st.Name())
	}
	if _, err := st.Get(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(2) err = %v", err)
	}
	b, err := st.Get(1)
	if err != nil || b[0] != 3 {
		t.Fatalf("Get(1) = %v, %v", b, err)
	}
}

func TestExecutorValidation(t *testing.T) {
	p := pipeline.DefaultStandard()
	if _, err := NewExecutor(nil, 1, 1, nil); err == nil {
		t.Fatal("accepted nil pipeline")
	}
	if _, err := NewExecutor(p, -1, 1, nil); err == nil {
		t.Fatal("accepted negative cores")
	}
	if _, err := NewExecutor(p, 1, 0.5, nil); err == nil {
		t.Fatal("accepted slowdown < 1")
	}
	e, err := NewExecutor(p, 3, 1, nil)
	if err != nil || e.Cores() != 3 {
		t.Fatalf("executor cores = %d, %v", e.Cores(), err)
	}
	z, _ := NewExecutor(p, 0, 1, nil)
	if z.Cores() != 0 {
		t.Fatal("zero-core executor reports cores")
	}
}

func TestExecutorRunPrefix(t *testing.T) {
	set := testImageSet(t, 1)
	raw, err := set.Raw(0)
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.DefaultStandard()
	counters := &Counters{}
	e, err := NewExecutor(p, 2, 1, counters)
	if err != nil {
		t.Fatal(err)
	}
	seed := pipeline.Seed{Job: 1, Epoch: 1, Sample: 0}

	art, err := e.RunPrefix(raw, 0, seed)
	if err != nil || art.Kind != pipeline.KindRaw {
		t.Fatalf("split 0: %v kind=%v", err, art.Kind)
	}
	art, err = e.RunPrefix(raw, 2, seed)
	if err != nil || art.Kind != pipeline.KindImage {
		t.Fatalf("split 2: %v kind=%v", err, art.Kind)
	}
	if art.Image.W != 224 {
		t.Fatalf("split 2 image width %d", art.Image.W)
	}
	if counters.OpsExecuted.Load() != 2 {
		t.Fatalf("ops executed = %d", counters.OpsExecuted.Load())
	}
	if counters.CPUNanos.Load() == 0 {
		t.Fatal("no CPU time recorded")
	}
	if _, err := e.RunPrefix(raw, 6, seed); err == nil {
		t.Fatal("accepted split beyond pipeline")
	}
	if _, err := e.RunPrefix(raw, -1, seed); err == nil {
		t.Fatal("accepted negative split")
	}
}

func TestExecutorZeroCoresRejectsOffload(t *testing.T) {
	e, _ := NewExecutor(pipeline.DefaultStandard(), 0, 1, nil)
	if _, err := e.RunPrefix([]byte{1}, 1, pipeline.Seed{}); !errors.Is(err, ErrNoOffload) {
		t.Fatalf("err = %v, want ErrNoOffload", err)
	}
	// Split 0 stays available.
	if _, err := e.RunPrefix([]byte{1}, 0, pipeline.Seed{}); err != nil {
		t.Fatal(err)
	}
}

func TestExecutorSlowdownStretchesOccupancy(t *testing.T) {
	set := testImageSet(t, 1)
	raw, _ := set.Raw(0)
	p := pipeline.DefaultStandard()
	fast := &Counters{}
	slow := &Counters{}
	ef, _ := NewExecutor(p, 1, 1, fast)
	es, _ := NewExecutor(p, 1, 4, slow)
	seed := pipeline.Seed{Job: 1, Epoch: 1, Sample: 0}
	if _, err := ef.RunPrefix(raw, 2, seed); err != nil {
		t.Fatal(err)
	}
	if _, err := es.RunPrefix(raw, 2, seed); err != nil {
		t.Fatal(err)
	}
	if slow.CPUNanos.Load() < 2*fast.CPUNanos.Load() {
		t.Fatalf("slowdown 4x recorded %dns vs fast %dns", slow.CPUNanos.Load(), fast.CPUNanos.Load())
	}
}

func TestServerConfigValidation(t *testing.T) {
	st := testStore(t, 1)
	if _, err := NewServer(ServerConfig{Pipeline: pipeline.DefaultStandard()}); err == nil {
		t.Fatal("accepted nil store")
	}
	if _, err := NewServer(ServerConfig{Store: st}); err == nil {
		t.Fatal("accepted nil pipeline")
	}
	if _, err := NewServer(ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Slowdown: 0.2}); err == nil {
		t.Fatal("accepted slowdown < 1")
	}
}

// TestFetchAllSplitsMatchLocal is the networked version of the
// split-equivalence invariant: every split fetched over the wire, finished
// locally, matches a fully local run.
func TestFetchAllSplitsMatchLocal(t *testing.T) {
	set := testImageSet(t, 3)
	st, err := FromImageSet(set)
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.DefaultStandard()
	_, dial := startServer(t, ServerConfig{Store: st, Pipeline: p, Cores: 4})
	c := dial()

	if c.DatasetName() != "test-set" || c.NumSamples() != 3 {
		t.Fatalf("handshake facts: %q %d", c.DatasetName(), c.NumSamples())
	}

	const epoch = 3
	for sample := uint32(0); sample < 3; sample++ {
		raw, _ := set.Raw(int(sample))
		seed := pipeline.Seed{Job: 42, Epoch: epoch, Sample: uint64(sample)}
		want, err := p.Run(raw, seed)
		if err != nil {
			t.Fatal(err)
		}
		for split := 0; split <= p.Len(); split++ {
			res, err := c.Fetch(context.Background(), sample, split, epoch)
			if err != nil {
				t.Fatalf("fetch sample=%d split=%d: %v", sample, split, err)
			}
			got, err := p.RunRange(res.Artifact, split, p.Len(), seed)
			if err != nil {
				t.Fatalf("suffix sample=%d split=%d: %v", sample, split, err)
			}
			if !got.Equal(want) {
				t.Fatalf("sample=%d split=%d differs from local run", sample, split)
			}
			if res.WireBytes <= res.Artifact.WireSize() {
				t.Fatalf("wire bytes %d not > artifact %d", res.WireBytes, res.Artifact.WireSize())
			}
		}
	}
}

func TestFetchErrors(t *testing.T) {
	st := testStore(t, 2)
	_, dial := startServer(t, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 1})
	c := dial()

	if _, err := c.Fetch(context.Background(), 99, 0, 1); !errors.Is(err, ErrSampleMissing) {
		t.Fatalf("missing sample err = %v", err)
	}
	if _, err := c.Fetch(context.Background(), 0, 6, 1); !errors.Is(err, ErrBadSplitReq) {
		t.Fatalf("oversized split err = %v", err)
	}
	if _, err := c.Fetch(context.Background(), 0, 300, 1); err == nil {
		t.Fatal("accepted split > 255")
	}
}

func TestFetchOffloadDisabled(t *testing.T) {
	st := testStore(t, 1)
	_, dial := startServer(t, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 0})
	c := dial()
	if _, err := c.Fetch(context.Background(), 0, 2, 1); !errors.Is(err, ErrBadSplitReq) {
		t.Fatalf("offload with 0 cores err = %v", err)
	}
	if _, err := c.Fetch(context.Background(), 0, 0, 1); err != nil {
		t.Fatalf("raw fetch with 0 cores: %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	st := testStore(t, 2)
	srv, dial := startServer(t, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard(), Cores: 2})
	c := dial()

	if _, err := c.Fetch(context.Background(), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fetch(context.Background(), 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.SamplesServed != 2 {
		t.Fatalf("samples served = %d", stats.SamplesServed)
	}
	if stats.OpsExecuted != 2 {
		t.Fatalf("ops executed = %d", stats.OpsExecuted)
	}
	if stats.BytesSent == 0 || stats.ServerCPUNanos == 0 {
		t.Fatalf("stats zeroed: %+v", stats)
	}
	if srv.Counters().SamplesServed.Load() != 2 {
		t.Fatal("server counters disagree with stats")
	}
}

func TestConcurrentClients(t *testing.T) {
	const n = 6
	st := testStore(t, n)
	p := pipeline.DefaultStandard()
	_, dial := startServer(t, ServerConfig{Store: st, Pipeline: p, Cores: 2})

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(sample uint32) {
			defer wg.Done()
			c := dial()
			res, err := c.Fetch(context.Background(), sample, 2, 1)
			if err != nil {
				errs <- err
				return
			}
			if res.Artifact.Kind != pipeline.KindImage {
				errs <- errors.New("wrong artifact kind")
			}
		}(uint32(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHandshakeRejectsNonHello(t *testing.T) {
	st := testStore(t, 1)
	srv, err := NewServer(ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard()})
	if err != nil {
		t.Fatal(err)
	}
	l := netsim.NewPipeListener()
	go srv.Serve(l)
	defer srv.Close()

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Write(conn, &wire.StatsReq{}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Read(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*wire.ErrorResp); !ok {
		t.Fatalf("got %s, want ErrorResp", msg.Type())
	}
}

func TestHandshakeRejectsBadVersion(t *testing.T) {
	st := testStore(t, 1)
	srv, _ := NewServer(ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard()})
	l := netsim.NewPipeListener()
	go srv.Serve(l)
	defer srv.Close()

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClientWithVersion(conn, 1, 99); err == nil {
		t.Fatal("handshake with bad version succeeded")
	}
}

func TestServerCloseIdempotentAndRejectsServe(t *testing.T) {
	st := testStore(t, 1)
	srv, _ := NewServer(ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard()})
	l := netsim.NewPipeListener()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	// Prove Serve is accepting before closing: a completed handshake has
	// round-tripped through the accept loop, no timing assumption needed.
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	probe, err := NewClient(conn, 1)
	if err != nil {
		t.Fatalf("server not serving: %v", err)
	}
	probe.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if err := srv.Serve(l); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve after Close = %v", err)
	}
}

func TestClientClosedOperations(t *testing.T) {
	st := testStore(t, 1)
	_, dial := startServer(t, ServerConfig{Store: st, Pipeline: pipeline.DefaultStandard()})
	c := dial()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fetch(context.Background(), 0, 0, 1); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Fetch after close = %v", err)
	}
	if _, err := c.Stats(context.Background()); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Stats after close = %v", err)
	}
}

func TestServerOverRealTCP(t *testing.T) {
	st := testStore(t, 2)
	p := pipeline.DefaultStandard()
	srv, err := NewServer(ServerConfig{Store: st, Pipeline: p, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	c, err := Dial(l.Addr().String(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Fetch(context.Background(), 1, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Artifact.Kind != pipeline.KindTensor {
		t.Fatalf("full offload returned %s", res.Artifact.Kind)
	}
}

func TestServerOverShapedLink(t *testing.T) {
	// End-to-end through the token-bucket shaper: correctness preserved.
	st := testStore(t, 1)
	p := pipeline.DefaultStandard()
	srv, err := NewServer(ServerConfig{Store: st, Pipeline: p, Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bucket, err := netsim.NewTokenBucket(netsim.Mbps(200), 64<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(netsim.ShapeListener(inner, bucket))
	defer srv.Close()

	c, err := Dial(inner.Addr().String(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Fetch(context.Background(), 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Artifact.Kind != pipeline.KindImage {
		t.Fatalf("shaped fetch returned %s", res.Artifact.Kind)
	}
}
