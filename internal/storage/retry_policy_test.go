package storage

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
)

// TestRetryPolicyNormalized: zero fields resolve to documented defaults,
// negative fields disable their knob, out-of-range values clamp.
func TestRetryPolicyNormalized(t *testing.T) {
	cases := []struct {
		name string
		in   RetryPolicy
		want RetryPolicy
	}{
		{
			name: "zero value gets all defaults",
			in:   RetryPolicy{},
			want: RetryPolicy{Attempts: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 2 * time.Second, Multiplier: 2, Jitter: 0.2},
		},
		{
			name: "negative knobs disable",
			in:   RetryPolicy{Attempts: 2, BaseBackoff: -1, MaxBackoff: -1, Multiplier: 3, Jitter: -1},
			want: RetryPolicy{Attempts: 2, BaseBackoff: 0, MaxBackoff: 0, Multiplier: 3, Jitter: 0},
		},
		{
			name: "max below base lifts to base",
			in:   RetryPolicy{Attempts: 1, BaseBackoff: time.Second, MaxBackoff: time.Millisecond, Multiplier: 1, Jitter: -1},
			want: RetryPolicy{Attempts: 1, BaseBackoff: time.Second, MaxBackoff: time.Second, Multiplier: 1, Jitter: 0},
		},
		{
			name: "multiplier below one clamps to constant backoff",
			in:   RetryPolicy{Attempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Second, Multiplier: 0.5, Jitter: 2},
			want: RetryPolicy{Attempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Second, Multiplier: 1, Jitter: 1},
		},
		{
			name: "negative attempts fall back to default budget",
			in:   RetryPolicy{Attempts: -7, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond, Multiplier: 1, Jitter: -1},
			want: RetryPolicy{Attempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond, Multiplier: 1, Jitter: 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.Normalized(); got != tc.want {
				t.Fatalf("Normalized() = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestRetryPolicyBackoff: the schedule grows exponentially, caps at
// MaxBackoff, and jitter stays within ±Jitter of the unjittered value.
func TestRetryPolicyBackoff(t *testing.T) {
	exp := RetryPolicy{Attempts: 8, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Multiplier: 2, Jitter: -1}
	cases := []struct {
		name  string
		p     RetryPolicy
		retry int
		u     float64
		want  time.Duration
	}{
		{"retry zero is free", exp, 0, 0.5, 0},
		{"first retry is base", exp, 1, 0.5, 10 * time.Millisecond},
		{"second doubles", exp, 2, 0.5, 20 * time.Millisecond},
		{"fourth is 8x", exp, 4, 0.5, 80 * time.Millisecond},
		{"fifth caps at max", exp, 5, 0.5, 100 * time.Millisecond},
		{"way past the cap stays capped", exp, 40, 0.5, 100 * time.Millisecond},
		{"disabled backoff is always zero",
			RetryPolicy{Attempts: 3, BaseBackoff: -1, MaxBackoff: -1, Multiplier: 1, Jitter: -1}, 3, 0.9, 0},
		{"constant multiplier never grows",
			RetryPolicy{Attempts: 5, BaseBackoff: 7 * time.Millisecond, MaxBackoff: time.Second, Multiplier: 1, Jitter: -1}, 4, 0.5, 7 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Backoff(tc.retry, tc.u); got != tc.want {
				t.Fatalf("Backoff(%d, %v) = %v, want %v", tc.retry, tc.u, got, tc.want)
			}
		})
	}

	// Jitter bounds: every draw lands in [base·(1-j), base·(1+j)), and the
	// extremes of u map to the extremes of the window.
	j := RetryPolicy{Attempts: 2, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Multiplier: 1, Jitter: 0.2}
	lo := 80 * time.Millisecond
	hi := 120 * time.Millisecond
	for _, u := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999999} {
		got := j.Backoff(1, u)
		if got < lo || got > hi {
			t.Fatalf("Backoff(1, %v) = %v outside [%v, %v]", u, got, lo, hi)
		}
	}
	if got := j.Backoff(1, 0); got != lo {
		t.Fatalf("u=0 should hit the low edge: %v != %v", got, lo)
	}
}

// transientErr is a transport-flavored failure the retry loop must chew on.
var transientErr = errors.New("simulated transport failure")

// retryHarness builds a ReconnectingClient against a live in-memory server
// with the given policy.
func retryHarness(t *testing.T, policy RetryPolicy, clock simclock.Clock) *ReconnectingClient {
	t.Helper()
	l := startRetryServer(t, 1, 1)
	rc, err := NewReconnectingWithPolicy(flakyDialer(t, l, 1<<30), policy, clock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	return rc
}

// TestWithRetryBudgetExhaustion: when every attempt fails transiently, the
// final error wraps the last underlying error and names the budget.
func TestWithRetryBudgetExhaustion(t *testing.T) {
	rc := retryHarness(t, RetryPolicy{Attempts: 3, BaseBackoff: -1, Jitter: -1}, nil)
	calls := 0
	err := rc.withRetry(context.Background(), func(c *Client) error {
		calls++
		return transientErr
	})
	if !errors.Is(err, transientErr) {
		t.Fatalf("exhausted budget should wrap the last underlying error, got %v", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error should name the budget: %v", err)
	}
	if calls != 3 {
		t.Fatalf("op ran %d times, budget was 3", calls)
	}
}

// TestWithRetryCtxCancelMidBackoff: cancellation during a backoff pause
// aborts the wait immediately with a context error — it does not sit out the
// rest of the pause. The virtual clock never advances, so any completion at
// all proves the cancel path; the error must still be matchable.
func TestWithRetryCtxCancelMidBackoff(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	rc := retryHarness(t, RetryPolicy{Attempts: 4, BaseBackoff: time.Hour, MaxBackoff: time.Hour, Multiplier: 1, Jitter: -1}, clock)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- rc.withRetry(ctx, func(c *Client) error { return transientErr })
	}()

	// Wait until the retry loop is parked in its backoff sleep, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for clock.PendingWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retry loop never reached the backoff sleep")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel mid-backoff returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("withRetry still blocked after cancel — backoff sleep is not ctx-aware")
	}
}

// TestLegacyConstructorPolicy: the (attempts, backoff) constructor maps onto
// a constant, jitter-free policy so old call sites keep their exact timing.
func TestLegacyConstructorPolicy(t *testing.T) {
	l := startRetryServer(t, 1, 1)
	rc, err := NewReconnecting(flakyDialer(t, l, 1<<30), 5, 7*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	want := RetryPolicy{Attempts: 5, BaseBackoff: 7 * time.Millisecond, MaxBackoff: 7 * time.Millisecond, Multiplier: 1, Jitter: 0}
	if got := rc.Policy(); got != want {
		t.Fatalf("legacy policy = %+v, want %+v", got, want)
	}
	// Zero backoff means "no pause", not "default pause".
	rc2, err := NewReconnecting(flakyDialer(t, l, 1<<30), 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	if got := rc2.Policy().BaseBackoff; got != 0 {
		t.Fatalf("legacy zero backoff resolved to %v", got)
	}
}

// TestSleepCtx: the helper honors both the clock and the context, and a
// non-positive duration returns without touching the clock.
func TestSleepCtx(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	if err := sleepCtx(context.Background(), clock, 0); err != nil {
		t.Fatalf("zero sleep: %v", err)
	}
	if clock.PendingWaiters() != 0 {
		t.Fatal("zero sleep queued a waiter")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sleepCtx(ctx, clock, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sleep: %v", err)
	}
	// Fresh clock: the canceled call above legitimately left its 1h waiter
	// queued (select abandoned it), which would confuse the parked check.
	clock2 := simclock.NewVirtual(time.Unix(0, 0))
	done := make(chan error, 1)
	go func() { done <- sleepCtx(context.Background(), clock2, time.Minute) }()
	deadline := time.Now().Add(5 * time.Second)
	for clock2.PendingWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sleeper never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	clock2.Advance(time.Minute)
	if err := <-done; err != nil {
		t.Fatalf("completed sleep: %v", err)
	}
}
