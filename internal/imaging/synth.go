package imaging

import (
	"math"
	"math/rand/v2"
)

// SynthParams controls the synthetic photo generator. Detail sets the
// amplitude of high-frequency texture in [0, 1]: near 0 produces smooth,
// highly compressible images (small "JPEG"s); near 1 produces noisy ones
// that compress poorly (large "JPEG"s), mimicking the raw-size spread of
// real photo datasets.
type SynthParams struct {
	W, H   int
	Detail float64
	Seed   uint64
}

// lattice is a coarse grid of random values upsampled bilinearly to produce
// band-limited "photo-like" structure.
type lattice struct {
	w, h int
	v    []float64
}

func newLattice(w, h int, rng *rand.Rand) *lattice {
	l := &lattice{w: w, h: h, v: make([]float64, w*h)}
	for i := range l.v {
		l.v[i] = rng.Float64()
	}
	return l
}

// sample evaluates the lattice at normalized coordinates (u, v) in [0, 1].
func (l *lattice) sample(u, v float64) float64 {
	x := u * float64(l.w-1)
	y := v * float64(l.h-1)
	x0, y0 := int(x), int(y)
	x1, y1 := x0+1, y0+1
	if x1 >= l.w {
		x1 = l.w - 1
	}
	if y1 >= l.h {
		y1 = l.h - 1
	}
	fx, fy := x-float64(x0), y-float64(y0)
	top := l.v[y0*l.w+x0]*(1-fx) + l.v[y0*l.w+x1]*fx
	bot := l.v[y1*l.w+x0]*(1-fx) + l.v[y1*l.w+x1]*fx
	return top*(1-fy) + bot*fy
}

// Synthesize renders a deterministic synthetic photo. The image combines a
// smooth multi-octave luminance field, a global color gradient, and
// per-pixel texture noise scaled by Detail.
func Synthesize(p SynthParams) (*Image, error) {
	im, err := New(p.W, p.H)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, p.Seed^0x9e3779b97f4a7c15))
	detail := p.Detail
	if detail < 0 {
		detail = 0
	}
	if detail > 1 {
		detail = 1
	}

	// Three octaves of band-limited structure.
	oct1 := newLattice(4, 4, rng)
	oct2 := newLattice(12, 12, rng)
	oct3 := newLattice(37, 37, rng)

	// Random color axes for the gradient.
	baseR := 0.3 + 0.5*rng.Float64()
	baseG := 0.3 + 0.5*rng.Float64()
	baseB := 0.3 + 0.5*rng.Float64()
	angle := rng.Float64() * 2 * math.Pi
	gx, gy := math.Cos(angle), math.Sin(angle)

	noiseAmp := 90.0 * detail // peak-to-peak texture amplitude in levels

	for y := 0; y < p.H; y++ {
		v := float64(y) / float64(max(p.H-1, 1))
		for x := 0; x < p.W; x++ {
			u := float64(x) / float64(max(p.W-1, 1))
			lum := 0.55*oct1.sample(u, v) + 0.3*oct2.sample(u, v) + 0.15*oct3.sample(u, v)
			grad := 0.5 + 0.5*(gx*(u-0.5)+gy*(v-0.5))
			n := (rng.Float64() - 0.5) * noiseAmp
			r := clamp255(255*(baseR*lum+0.25*grad) + n)
			g := clamp255(255*(baseG*lum+0.25*(1-grad)) + n*0.8)
			b := clamp255(255*(baseB*lum+0.20*grad) + n*0.9)
			im.Set(x, y, r, g, b)
		}
	}
	return im, nil
}

func clamp255(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
