package imaging

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"image/color"
	"io"
	"sync"

	"repro/internal/bufpool"
)

// SJPG is a real lossy image codec standing in for JPEG. The encoder
// converts RGB to YCbCr, 2x2-subsamples the chroma planes, quantizes each
// plane by a quality-derived shift, delta-predicts rows, and DEFLATEs the
// residuals. Like JPEG, its output size depends strongly on image content:
// smooth images compress an order of magnitude better than noisy ones.

const (
	sjpgMagic   = "SJPG"
	sjpgVersion = 1
	headerSize  = 4 + 1 + 1 + 4 + 4 // magic, version, quality, W, H
)

// Codec errors.
var (
	ErrCorrupt     = errors.New("imaging: corrupt SJPG stream")
	ErrBadQuality  = errors.New("imaging: quality must be in [1, 100]")
	ErrUnsupported = errors.New("imaging: unsupported SJPG version")
)

// DefaultQuality is used by EncodeDefault and by the dataset generator.
const DefaultQuality = 80

func shifts(quality int) (yShift, cShift uint) {
	switch {
	case quality >= 90:
		return 0, 1
	case quality >= 70:
		return 1, 2
	case quality >= 50:
		return 2, 3
	default:
		return 3, 4
	}
}

// Scratch pools for the codec hot path: the DEFLATE coders carry large
// internal state (tens of KB each) and are reset between uses; the plane and
// accumulator scratch comes from the bufpool arena.
var (
	flateWriterPool = sync.Pool{New: func() any {
		zw, err := flate.NewWriter(io.Discard, flate.DefaultCompression)
		if err != nil {
			panic(err) // DefaultCompression is always a valid level
		}
		return zw
	}}
	flateReaderPool = sync.Pool{New: func() any {
		return &pooledReader{br: bytes.NewReader(nil), zr: flate.NewReader(bytes.NewReader(nil))}
	}}
	encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

// pooledReader bundles a reusable bytes.Reader with a resettable DEFLATE
// decompressor so Decode performs no per-call codec-state allocation.
type pooledReader struct {
	br *bytes.Reader
	zr io.ReadCloser
}

func (p *pooledReader) reset(data []byte) {
	p.br.Reset(data)
	// flate.NewReader's concrete type always implements Resetter.
	p.zr.(flate.Resetter).Reset(p.br, nil)
}

// release drops the reference to the caller's data (so pooling the reader
// cannot pin a decoded stream in memory) and returns it to the pool.
func (p *pooledReader) release() {
	p.br.Reset(nil)
	flateReaderPool.Put(p)
}

// Encode compresses im at the given quality (1..100) and returns the SJPG
// byte stream. The returned slice is freshly allocated and owned by the
// caller; all codec scratch is pooled internally.
func Encode(im *Image, quality int) ([]byte, error) {
	if quality < 1 || quality > 100 {
		return nil, fmt.Errorf("%w: %d", ErrBadQuality, quality)
	}
	yShift, cShift := shifts(quality)

	cw, ch := (im.W+1)/2, (im.H+1)/2
	planes := bufpool.GetBytes(im.W*im.H + 2*cw*ch)
	defer bufpool.PutBytes(planes)
	yPlane := planes[:im.W*im.H]
	cbPlane := planes[im.W*im.H : im.W*im.H+cw*ch]
	crPlane := planes[im.W*im.H+cw*ch:]
	fillPlanes(im, yShift, cShift, yPlane, cbPlane, crPlane)

	deltaEncode(yPlane, im.W)
	deltaEncode(cbPlane, cw)
	deltaEncode(crPlane, cw)

	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	buf.Reset()
	buf.WriteString(sjpgMagic)
	buf.WriteByte(sjpgVersion)
	buf.WriteByte(uint8(quality))
	var dims [8]byte
	binary.BigEndian.PutUint32(dims[0:4], uint32(im.W))
	binary.BigEndian.PutUint32(dims[4:8], uint32(im.H))
	buf.Write(dims[:])

	zw := flateWriterPool.Get().(*flate.Writer)
	defer flateWriterPool.Put(zw)
	zw.Reset(buf)
	if _, err := zw.Write(planes); err != nil {
		return nil, fmt.Errorf("imaging: compress planes: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("imaging: finish compress: %w", err)
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// fillPlanes computes the SJPG-quantized Y/Cb/Cr planes for im: luma per
// pixel shifted by yShift, chroma 2x2-box-averaged then shifted by cShift.
// The plane slices must be sized W*H, cw*ch, cw*ch respectively.
func fillPlanes(im *Image, yShift, cShift uint, yPlane, cbPlane, crPlane []uint8) {
	cw, ch := (im.W+1)/2, (im.H+1)/2
	sums := bufpool.GetUint32(3 * cw * ch)
	defer bufpool.PutUint32(sums)
	cbSum := sums[:cw*ch]
	crSum := sums[cw*ch : 2*cw*ch]
	cnt := sums[2*cw*ch:]
	for i := range sums {
		sums[i] = 0
	}

	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			yy, cb, cr := color.RGBToYCbCr(r, g, b)
			yPlane[y*im.W+x] = yy >> yShift
			ci := (y/2)*cw + x/2
			cbSum[ci] += uint32(cb)
			crSum[ci] += uint32(cr)
			cnt[ci]++
		}
	}
	for i := range cbPlane {
		n := cnt[i]
		if n == 0 {
			continue
		}
		cbPlane[i] = uint8(cbSum[i]/n) >> cShift
		crPlane[i] = uint8(crSum[i]/n) >> cShift
	}
}

// EncodeDefault is Encode at DefaultQuality.
func EncodeDefault(im *Image) ([]byte, error) { return Encode(im, DefaultQuality) }

// Decode reconstructs an image from an SJPG stream. The returned image is
// pool-backed: the caller owns it and should call Release when done to keep
// the decode path allocation-free at steady state (skipping Release is safe,
// merely slower).
func Decode(data []byte) (*Image, error) {
	w, h, quality, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	yShift, cShift := shifts(quality)

	cw, chh := (w+1)/2, (h+1)/2
	total := w*h + 2*cw*chh
	planes := bufpool.GetBytes(total)
	defer bufpool.PutBytes(planes)
	pr := flateReaderPool.Get().(*pooledReader)
	defer pr.release()
	pr.reset(data[headerSize:])
	zr := pr.zr
	if _, err := io.ReadFull(zr, planes); err != nil {
		return nil, fmt.Errorf("%w: decompress: %v", ErrCorrupt, err)
	}
	// A well-formed stream has no trailing plane data. A reader may legally
	// return (0, nil) before signalling EOF, so a single Read is not a
	// reliable probe; io.ReadFull retries until it gets a byte or an error.
	var trail [1]byte
	switch _, err := io.ReadFull(zr, trail[:]); err {
	case io.EOF:
		// Clean end of stream.
	case nil:
		return nil, fmt.Errorf("%w: trailing data", ErrCorrupt)
	default:
		return nil, fmt.Errorf("%w: trailing garbage: %v", ErrCorrupt, err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("%w: close: %v", ErrCorrupt, err)
	}

	yPlane := planes[:w*h]
	cbPlane := planes[w*h : w*h+cw*chh]
	crPlane := planes[w*h+cw*chh:]
	deltaDecode(yPlane, w)
	deltaDecode(cbPlane, cw)
	deltaDecode(crPlane, cw)

	return planesToImage(w, h, yShift, cShift, yPlane, cbPlane, crPlane)
}

// planesToImage dequantizes Y/Cb/Cr planes (already delta-decoded) back into
// a pooled RGB image. The shifts are the effective quantization at decode
// time — for a progressive prefix they include the undelivered refinement
// depth on top of the quality-derived shift.
func planesToImage(w, h int, yShift, cShift uint, yPlane, cbPlane, crPlane []uint8) (*Image, error) {
	cw := (w + 1) / 2
	im, err := NewPooled(w, h)
	if err != nil {
		return nil, err
	}
	yHalf := uint8(0)
	if yShift > 0 {
		yHalf = 1 << (yShift - 1)
	}
	cHalf := uint8(0)
	if cShift > 0 {
		cHalf = 1 << (cShift - 1)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			yy := dequant(yPlane[y*w+x], yShift, yHalf)
			ci := (y/2)*cw + x/2
			cb := dequant(cbPlane[ci], cShift, cHalf)
			cr := dequant(crPlane[ci], cShift, cHalf)
			r, g, b := color.YCbCrToRGB(yy, cb, cr)
			im.Set(x, y, r, g, b)
		}
	}
	return im, nil
}

func dequant(v uint8, shift uint, half uint8) uint8 {
	out := uint16(v)<<shift + uint16(half)
	if out > 255 {
		out = 255
	}
	return uint8(out)
}

// DecodeDims returns the pixel dimensions recorded in an SJPG header without
// decompressing the payload.
func DecodeDims(data []byte) (w, h int, err error) {
	w, h, _, err = parseHeader(data)
	return w, h, err
}

func parseHeader(data []byte) (w, h, quality int, err error) {
	if len(data) < headerSize || string(data[:4]) != sjpgMagic {
		return 0, 0, 0, ErrCorrupt
	}
	if data[4] != sjpgVersion {
		return 0, 0, 0, fmt.Errorf("%w: %d", ErrUnsupported, data[4])
	}
	quality = int(data[5])
	if quality < 1 || quality > 100 {
		return 0, 0, 0, fmt.Errorf("%w: quality %d", ErrCorrupt, quality)
	}
	w = int(binary.BigEndian.Uint32(data[6:10]))
	h = int(binary.BigEndian.Uint32(data[10:14]))
	const maxDim = 1 << 16
	if w <= 0 || h <= 0 || w > maxDim || h > maxDim {
		return 0, 0, 0, fmt.Errorf("%w: dims %dx%d", ErrCorrupt, w, h)
	}
	return w, h, quality, nil
}

// deltaEncode replaces each value with its difference from the previous
// value in the row (first column predicts from the row above), tightening
// the residual distribution for DEFLATE.
func deltaEncode(plane []uint8, stride int) {
	if stride <= 0 {
		return
	}
	for i := len(plane) - 1; i > 0; i-- {
		var pred uint8
		if i%stride != 0 {
			pred = plane[i-1]
		} else {
			pred = plane[i-stride]
		}
		plane[i] -= pred
	}
}

// deltaDecode reverses deltaEncode in place.
func deltaDecode(plane []uint8, stride int) {
	if stride <= 0 {
		return
	}
	for i := 1; i < len(plane); i++ {
		var pred uint8
		if i%stride != 0 {
			pred = plane[i-1]
		} else {
			pred = plane[i-stride]
		}
		plane[i] += pred
	}
}
