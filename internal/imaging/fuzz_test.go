package imaging

import "testing"

// FuzzDecode: the SJPG decoder must never panic or over-allocate on
// arbitrary input, and accepted images must re-encode/decode consistently.
func FuzzDecode(f *testing.F) {
	for _, seed := range []uint64{1, 2} {
		im, err := Synthesize(SynthParams{W: 16, H: 12, Detail: 0.5, Seed: seed})
		if err != nil {
			f.Fatal(err)
		}
		data, err := EncodeDefault(im)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("SJPG"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := Decode(data)
		if err != nil {
			return
		}
		if im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H*Channels {
			t.Fatalf("accepted image has inconsistent geometry: %dx%d, %d bytes", im.W, im.H, len(im.Pix))
		}
		re, err := Encode(im, 80)
		if err != nil {
			t.Fatalf("accepted image failed to re-encode: %v", err)
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encoded image failed to decode: %v", err)
		}
	})
}
