package imaging

import "testing"

// FuzzDecode: the SJPG decoder must never panic or over-allocate on
// arbitrary input, and accepted images must re-encode/decode consistently.
func FuzzDecode(f *testing.F) {
	for _, seed := range []uint64{1, 2} {
		im, err := Synthesize(SynthParams{W: 16, H: 12, Detail: 0.5, Seed: seed})
		if err != nil {
			f.Fatal(err)
		}
		data, err := EncodeDefault(im)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("SJPG"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := Decode(data)
		if err != nil {
			return
		}
		if im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H*Channels {
			t.Fatalf("accepted image has inconsistent geometry: %dx%d, %d bytes", im.W, im.H, len(im.Pix))
		}
		re, err := Encode(im, 80)
		if err != nil {
			t.Fatalf("accepted image failed to re-encode: %v", err)
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encoded image failed to decode: %v", err)
		}
	})
}

// FuzzDecodeProgressive: the SJPR decoder must never panic, over-allocate,
// or return a wrong image on arbitrary input — truncated or corrupted
// containers surface as errors, and whatever it accepts must satisfy the
// prefix contract (slice of k scans decodes identically to decoding the
// blob at fidelity k).
func FuzzDecodeProgressive(f *testing.F) {
	for _, seed := range []uint64{1, 2} {
		im, err := Synthesize(SynthParams{W: 16, H: 12, Detail: 0.5, Seed: seed})
		if err != nil {
			f.Fatal(err)
		}
		data, err := EncodeProgressiveSidecar(im, 80, 3, []byte("label"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		if prefix, err := SlicePrefix(data, 2); err == nil {
			f.Add(prefix)
		}
		f.Add(data[:len(data)-3]) // mid-scan truncation
	}
	f.Add([]byte("SJPR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		im, k, err := DecodeProgressive(data)
		if err != nil {
			return
		}
		if im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H*Channels {
			t.Fatalf("accepted image has inconsistent geometry: %dx%d, %d bytes", im.W, im.H, len(im.Pix))
		}
		if k < 1 || k > MaxScans {
			t.Fatalf("accepted container reports %d scans", k)
		}
		again, err := DecodeAtFidelity(data, k)
		if err != nil {
			t.Fatalf("accepted container failed at-fidelity decode: %v", err)
		}
		if !im.Equal(again) {
			t.Fatal("DecodeProgressive and DecodeAtFidelity disagree on the same blob")
		}
		again.Release()
		im.Release()
	})
}
