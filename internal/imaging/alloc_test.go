package imaging

import (
	"testing"

	"repro/internal/raceflag"
)

// The codec is the data plane's hottest kernel, so its steady-state
// allocation behavior is pinned. With warm pools, every buffer we control —
// plane scratch, codec state, pixel output — is recycled; what remains is
// compress/flate rebuilding its per-block huffman tables inside Decode
// (~45 tiny allocations, ~2 KB total, unavoidable without reimplementing
// inflate). The budgets below are therefore a small byte ceiling plus an
// alloc-count ceiling just above that flate floor: a regression that
// reintroduces per-call plane or pixel buffers (megabytes per op) trips the
// byte budget immediately.

func TestDecodeSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark in -short mode")
	}
	if raceflag.Enabled {
		t.Skip("race detector degrades sync.Pool caching; budgets not meaningful")
	}
	im, err := Synthesize(SynthParams{W: 640, H: 480, Detail: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeDefault(im)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the flate-reader and plane/pixel pools.
	for i := 0; i < 8; i++ {
		out, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := Decode(data)
			if err != nil {
				b.Fatal(err)
			}
			out.Release()
		}
	})
	if got := res.AllocedBytesPerOp(); got > 64<<10 {
		t.Fatalf("Decode allocates %d B/op at steady state, budget is 64 KiB (pre-pooling: ~1.4 MB)", got)
	}
	if got := res.AllocsPerOp(); got > 60 {
		t.Fatalf("Decode makes %d allocs/op at steady state, budget is 60 (flate-internal floor ~45)", got)
	}
}

func TestEncodeSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector degrades sync.Pool caching; budgets not meaningful")
	}
	im, err := Synthesize(SynthParams{W: 640, H: 480, Detail: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := EncodeDefault(im); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := EncodeDefault(im); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("Encode allocates %.1f allocs/op at steady state, budget is 2", allocs)
	}
}
