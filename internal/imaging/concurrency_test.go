package imaging

import (
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentCodecBitIdentical hammers the pooled encode/decode path from
// GOMAXPROCS goroutines. Every decode must be bit-identical to a reference
// decoded single-threaded before the storm starts: if a pooled plane or pixel
// buffer were ever handed to two decodes at once, or returned to the pool
// while still referenced, the comparison (or the race detector) catches it.
func TestConcurrentCodecBitIdentical(t *testing.T) {
	const nInputs = 4
	type input struct {
		data []byte
		ref  *Image // plain (non-pooled) memory via Clone
	}
	inputs := make([]input, nInputs)
	for k := 0; k < nInputs; k++ {
		im, err := Synthesize(SynthParams{W: 96 + 16*k, H: 64 + 8*k, Detail: 0.6, Seed: uint64(k + 1)})
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeDefault(im)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		inputs[k] = input{data: data, ref: dec.Clone()}
		dec.Release()
	}

	workers := runtime.GOMAXPROCS(0)
	iters := 30
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				in := inputs[(w+i)%nInputs]
				dec, err := Decode(in.data)
				if err != nil {
					errs <- err
					return
				}
				if !dec.Equal(in.ref) {
					t.Errorf("worker %d iter %d: decoded image differs from reference", w, i)
					dec.Release()
					return
				}
				// Re-encode the pooled image and decode again: exercises the
				// pooled encoder scratch concurrently with other decoders.
				reenc, err := EncodeDefault(dec)
				dec.Release()
				if err != nil {
					errs <- err
					return
				}
				dec2, err := Decode(reenc)
				if err != nil {
					errs <- err
					return
				}
				if !dec2.Equal(in.ref) {
					t.Errorf("worker %d iter %d: re-encoded round trip differs from reference", w, i)
				}
				dec2.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
