package imaging

import "testing"

func benchImage(b *testing.B, w, h int, detail float64) *Image {
	b.Helper()
	im, err := Synthesize(SynthParams{W: w, H: h, Detail: detail, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return im
}

func BenchmarkSynthesize640x480(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(SynthParams{W: 640, H: 480, Detail: 0.5, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode640x480(b *testing.B) {
	im := benchImage(b, 640, 480, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeDefault(im); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode640x480(b *testing.B) {
	im := benchImage(b, 640, 480, 0.5)
	data, err := EncodeDefault(im)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

func BenchmarkResizeTo224(b *testing.B) {
	im := benchImage(b, 640, 480, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Resize(im, 224, 224); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlipHorizontal224(b *testing.B) {
	im := benchImage(b, 224, 224, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FlipHorizontal(im)
	}
}

func BenchmarkCrop(b *testing.B) {
	im := benchImage(b, 640, 480, 0.5)
	rect := Rect{X: 100, Y: 100, W: 300, H: 300}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Crop(im, rect); err != nil {
			b.Fatal(err)
		}
	}
}
