package imaging

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadDims(t *testing.T) {
	for _, c := range []struct{ w, h int }{{0, 1}, {1, 0}, {-3, 5}, {0, 0}} {
		if _, err := New(c.w, c.h); err == nil {
			t.Errorf("New(%d, %d) accepted bad dims", c.w, c.h)
		}
	}
}

func TestFromPixValidatesLength(t *testing.T) {
	if _, err := FromPix(2, 2, make([]uint8, 11)); err == nil {
		t.Fatal("FromPix accepted short buffer")
	}
	im, err := FromPix(2, 2, make([]uint8, 12))
	if err != nil {
		t.Fatal(err)
	}
	if im.Pixels() != 4 || im.ByteSize() != 12 {
		t.Fatalf("pixels=%d bytes=%d", im.Pixels(), im.ByteSize())
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	im := MustNew(3, 2)
	im.Set(2, 1, 10, 20, 30)
	r, g, b := im.At(2, 1)
	if r != 10 || g != 20 || b != 30 {
		t.Fatalf("At = (%d,%d,%d)", r, g, b)
	}
}

func TestCloneIsDeep(t *testing.T) {
	im := MustNew(2, 2)
	im.Set(0, 0, 1, 2, 3)
	cp := im.Clone()
	cp.Set(0, 0, 9, 9, 9)
	if r, _, _ := im.At(0, 0); r != 1 {
		t.Fatal("Clone shares pixel storage")
	}
	if !im.Equal(im.Clone()) {
		t.Fatal("clone not Equal to original")
	}
}

func TestEqualAndMaxAbsDiff(t *testing.T) {
	a := MustNew(2, 2)
	b := MustNew(2, 2)
	if !a.Equal(b) {
		t.Fatal("identical zero images not equal")
	}
	b.Set(1, 1, 0, 0, 5)
	if a.Equal(b) {
		t.Fatal("different images reported equal")
	}
	d, err := a.MaxAbsDiff(b)
	if err != nil || d != 5 {
		t.Fatalf("MaxAbsDiff = %d, %v", d, err)
	}
	if _, err := a.MaxAbsDiff(MustNew(3, 3)); err == nil {
		t.Fatal("MaxAbsDiff accepted mismatched sizes")
	}
	if a.Equal(nil) {
		t.Fatal("Equal(nil) = true")
	}
}

func TestCropBasics(t *testing.T) {
	im := MustNew(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			im.Set(x, y, uint8(x), uint8(y), 0)
		}
	}
	out, err := Crop(im, Rect{X: 1, Y: 2, W: 2, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 2 || out.H != 2 {
		t.Fatalf("crop dims %dx%d", out.W, out.H)
	}
	r, g, _ := out.At(0, 0)
	if r != 1 || g != 2 {
		t.Fatalf("crop origin pixel = (%d,%d)", r, g)
	}
}

func TestCropRejectsOutOfBounds(t *testing.T) {
	im := MustNew(4, 4)
	for _, rect := range []Rect{
		{X: -1, Y: 0, W: 2, H: 2},
		{X: 3, Y: 3, W: 2, H: 2},
		{X: 0, Y: 0, W: 0, H: 2},
		{X: 0, Y: 0, W: 5, H: 5},
	} {
		if _, err := Crop(im, rect); err == nil {
			t.Errorf("Crop accepted %+v", rect)
		}
	}
}

func TestResizeDims(t *testing.T) {
	im, err := Synthesize(SynthParams{W: 37, H: 23, Detail: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Resize(im, 224, 224)
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 224 || out.H != 224 {
		t.Fatalf("resize dims %dx%d", out.W, out.H)
	}
	if _, err := Resize(im, 0, 10); err == nil {
		t.Fatal("Resize accepted zero width")
	}
}

func TestResizeIdentity(t *testing.T) {
	im, _ := Synthesize(SynthParams{W: 16, H: 12, Detail: 0.3, Seed: 2})
	out, err := Resize(im, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(im) {
		t.Fatal("same-size resize is not identity")
	}
	out.Set(0, 0, 99, 99, 99)
	if r, _, _ := im.At(0, 0); r == 99 {
		t.Fatal("identity resize aliases source pixels")
	}
}

func TestResizeConstantImageStaysConstant(t *testing.T) {
	im := MustNew(10, 10)
	for i := range im.Pix {
		im.Pix[i] = 77
	}
	out, err := Resize(im, 23, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Pix {
		if v != 77 {
			t.Fatalf("pixel byte %d = %d after resize of constant image", i, v)
		}
	}
}

// TestResizeKnownValues pins bilinear interpolation against hand-computed
// references (align-corners=false sampling).
func TestResizeKnownValues(t *testing.T) {
	// 2x1 image, R channel = [0, 100]; upscale to 4x1.
	im := MustNew(2, 1)
	im.Set(0, 0, 0, 0, 0)
	im.Set(1, 0, 100, 0, 0)
	out, err := Resize(im, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sample centers at src coords -0.25 (clamped 0), 0.25, 0.75, 1.25
	// (clamped to edge pair) → values 0, 25, 75, 100.
	want := []uint8{0, 25, 75, 100}
	for x, w := range want {
		if r, _, _ := out.At(x, 0); r != w {
			t.Fatalf("pixel %d = %d, want %d", x, r, w)
		}
	}

	// Downscale 2x2 → 1x1 averages all four pixels.
	sq := MustNew(2, 2)
	sq.Set(0, 0, 10, 0, 0)
	sq.Set(1, 0, 20, 0, 0)
	sq.Set(0, 1, 30, 0, 0)
	sq.Set(1, 1, 40, 0, 0)
	one, err := Resize(sq, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r, _, _ := one.At(0, 0); r != 25 {
		t.Fatalf("2x2→1x1 = %d, want 25", r)
	}
}

func TestFlipHorizontalInvolution(t *testing.T) {
	im, _ := Synthesize(SynthParams{W: 31, H: 17, Detail: 0.7, Seed: 3})
	twice := FlipHorizontal(FlipHorizontal(im))
	if !twice.Equal(im) {
		t.Fatal("double flip is not identity")
	}
}

func TestFlipHorizontalMovesPixels(t *testing.T) {
	im := MustNew(3, 1)
	im.Set(0, 0, 1, 0, 0)
	im.Set(2, 0, 2, 0, 0)
	f := FlipHorizontal(im)
	if r, _, _ := f.At(0, 0); r != 2 {
		t.Fatalf("flip left pixel = %d", r)
	}
	if r, _, _ := f.At(2, 0); r != 1 {
		t.Fatalf("flip right pixel = %d", r)
	}
}

func TestCropResize(t *testing.T) {
	im, _ := Synthesize(SynthParams{W: 100, H: 80, Detail: 0.4, Seed: 4})
	out, err := CropResize(im, Rect{X: 10, Y: 10, W: 50, H: 40}, 224, 224)
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 224 || out.H != 224 {
		t.Fatalf("CropResize dims %dx%d", out.W, out.H)
	}
	if _, err := CropResize(im, Rect{X: 90, Y: 0, W: 50, H: 40}, 10, 10); err == nil {
		t.Fatal("CropResize accepted out-of-bounds rect")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, err := Synthesize(SynthParams{W: 40, H: 30, Detail: 0.6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Synthesize(SynthParams{W: 40, H: 30, Detail: 0.6, Seed: 42})
	if !a.Equal(b) {
		t.Fatal("same seed produced different images")
	}
	c, _ := Synthesize(SynthParams{W: 40, H: 30, Detail: 0.6, Seed: 43})
	if a.Equal(c) {
		t.Fatal("different seeds produced identical images")
	}
}

func TestSynthesizeClampsDetail(t *testing.T) {
	if _, err := Synthesize(SynthParams{W: 8, H: 8, Detail: -5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(SynthParams{W: 8, H: 8, Detail: 9, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(SynthParams{W: 0, H: 8, Seed: 1}); err == nil {
		t.Fatal("Synthesize accepted zero width")
	}
}

func TestCodecRoundTripDims(t *testing.T) {
	for _, dims := range []struct{ w, h int }{{1, 1}, {2, 3}, {7, 5}, {64, 48}, {101, 33}} {
		im, err := Synthesize(SynthParams{W: dims.w, H: dims.h, Detail: 0.3, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		data, err := Encode(im, 90)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("decode %dx%d: %v", dims.w, dims.h, err)
		}
		if got.W != im.W || got.H != im.H {
			t.Fatalf("round trip dims %dx%d -> %dx%d", im.W, im.H, got.W, got.H)
		}
	}
}

func TestCodecLossBounded(t *testing.T) {
	im, _ := Synthesize(SynthParams{W: 96, H: 64, Detail: 0.1, Seed: 11})
	data, err := Encode(im, 90)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	d, err := im.MaxAbsDiff(got)
	if err != nil {
		t.Fatal(err)
	}
	// Quality 90: no luma quantization, 2x chroma subsample on a smooth
	// image; loss should be modest.
	if d > 48 {
		t.Fatalf("max abs diff = %d at quality 90", d)
	}
}

func TestCodecQualityTradesSizeForLoss(t *testing.T) {
	im, _ := Synthesize(SynthParams{W: 128, H: 96, Detail: 0.5, Seed: 13})
	hi, err := Encode(im, 95)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Encode(im, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(lo) >= len(hi) {
		t.Fatalf("low quality (%dB) not smaller than high quality (%dB)", len(lo), len(hi))
	}
}

func TestCodecDetailGrowsSize(t *testing.T) {
	smooth, _ := Synthesize(SynthParams{W: 128, H: 96, Detail: 0.0, Seed: 17})
	noisy, _ := Synthesize(SynthParams{W: 128, H: 96, Detail: 1.0, Seed: 17})
	a, err := EncodeDefault(smooth)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeDefault(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) <= len(a) {
		t.Fatalf("noisy image (%dB) not larger than smooth (%dB)", len(b), len(a))
	}
}

func TestCodecCompresses(t *testing.T) {
	im, _ := Synthesize(SynthParams{W: 256, H: 192, Detail: 0.2, Seed: 19})
	data, err := EncodeDefault(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= im.ByteSize()/2 {
		t.Fatalf("encoded %dB of %dB raw; expected >2x compression", len(data), im.ByteSize())
	}
}

func TestCodecDeterministic(t *testing.T) {
	im, _ := Synthesize(SynthParams{W: 50, H: 40, Detail: 0.5, Seed: 21})
	a, _ := EncodeDefault(im)
	b, _ := EncodeDefault(im)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding not deterministic")
	}
}

func TestDecodeDims(t *testing.T) {
	im, _ := Synthesize(SynthParams{W: 33, H: 44, Detail: 0.2, Seed: 23})
	data, _ := EncodeDefault(im)
	w, h, err := DecodeDims(data)
	if err != nil || w != 33 || h != 44 {
		t.Fatalf("DecodeDims = %d,%d,%v", w, h, err)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	im, _ := Synthesize(SynthParams{W: 20, H: 20, Detail: 0.2, Seed: 25})
	data, _ := EncodeDefault(im)

	cases := map[string][]byte{
		"empty":       {},
		"short":       data[:5],
		"bad magic":   append([]byte("XJPG"), data[4:]...),
		"bad version": func() []byte { d := append([]byte(nil), data...); d[4] = 99; return d }(),
		"truncated":   data[:len(data)-4],
		"zero dims": func() []byte {
			d := append([]byte(nil), data...)
			d[6], d[7], d[8], d[9] = 0, 0, 0, 0
			return d
		}(),
		"garbage body": append(append([]byte(nil), data[:headerSize]...), bytes.Repeat([]byte{0xFF}, 32)...),
	}
	for name, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode accepted %s input", name)
		}
	}
}

func TestEncodeRejectsBadQuality(t *testing.T) {
	im := MustNew(4, 4)
	for _, q := range []int{0, -1, 101} {
		if _, err := Encode(im, q); err == nil {
			t.Errorf("Encode accepted quality %d", q)
		}
	}
}

// Property: encode/decode round trip preserves dimensions and never errors
// for arbitrary small geometry and detail.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(w8, h8 uint8, detail uint8, seed uint64) bool {
		w := int(w8%60) + 1
		h := int(h8%60) + 1
		im, err := Synthesize(SynthParams{W: w, H: h, Detail: float64(detail) / 255, Seed: seed})
		if err != nil {
			return false
		}
		data, err := Encode(im, 70)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return got.W == w && got.H == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: flip is an involution for arbitrary synthesized images.
func TestFlipInvolutionProperty(t *testing.T) {
	f := func(w8, h8 uint8, seed uint64) bool {
		w := int(w8%40) + 1
		h := int(h8%40) + 1
		im, err := Synthesize(SynthParams{W: w, H: h, Detail: 0.5, Seed: seed})
		if err != nil {
			return false
		}
		return FlipHorizontal(FlipHorizontal(im)).Equal(im)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
