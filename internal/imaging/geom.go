package imaging

import "fmt"

// Rect is an axis-aligned pixel rectangle with inclusive origin and
// exclusive extent, i.e. it covers x in [X, X+W) and y in [Y, Y+H).
type Rect struct {
	X, Y, W, H int
}

// Valid reports whether the rectangle has positive area.
func (r Rect) Valid() bool { return r.W > 0 && r.H > 0 }

// Within reports whether the rectangle lies fully inside a w×h image.
func (r Rect) Within(w, h int) bool {
	return r.Valid() && r.X >= 0 && r.Y >= 0 && r.X+r.W <= w && r.Y+r.H <= h
}

// Crop returns a copy of the sub-image covered by rect.
func Crop(im *Image, rect Rect) (*Image, error) {
	if !rect.Within(im.W, im.H) {
		return nil, fmt.Errorf("%w: crop %+v of %dx%d", ErrBadDimensions, rect, im.W, im.H)
	}
	out := MustNew(rect.W, rect.H)
	for y := 0; y < rect.H; y++ {
		srcOff := im.offset(rect.X, rect.Y+y)
		dstOff := out.offset(0, y)
		copy(out.Pix[dstOff:dstOff+rect.W*Channels], im.Pix[srcOff:srcOff+rect.W*Channels])
	}
	return out, nil
}

// Resize scales the image to w×h using bilinear interpolation. It matches
// the sampling used by common DL preprocessing (align-corners=false).
func Resize(im *Image, w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: resize to %dx%d", ErrBadDimensions, w, h)
	}
	if w == im.W && h == im.H {
		return im.Clone(), nil
	}
	out := MustNew(w, h)
	xRatio := float64(im.W) / float64(w)
	yRatio := float64(im.H) / float64(h)
	for y := 0; y < h; y++ {
		srcY := (float64(y)+0.5)*yRatio - 0.5
		if srcY < 0 {
			srcY = 0
		}
		y0 := int(srcY)
		y1 := y0 + 1
		if y1 >= im.H {
			y1 = im.H - 1
		}
		fy := srcY - float64(y0)
		for x := 0; x < w; x++ {
			srcX := (float64(x)+0.5)*xRatio - 0.5
			if srcX < 0 {
				srcX = 0
			}
			x0 := int(srcX)
			x1 := x0 + 1
			if x1 >= im.W {
				x1 = im.W - 1
			}
			fx := srcX - float64(x0)

			o00 := im.offset(x0, y0)
			o10 := im.offset(x1, y0)
			o01 := im.offset(x0, y1)
			o11 := im.offset(x1, y1)
			dst := out.offset(x, y)
			for c := 0; c < Channels; c++ {
				top := float64(im.Pix[o00+c])*(1-fx) + float64(im.Pix[o10+c])*fx
				bot := float64(im.Pix[o01+c])*(1-fx) + float64(im.Pix[o11+c])*fx
				v := top*(1-fy) + bot*fy
				out.Pix[dst+c] = uint8(v + 0.5)
			}
		}
	}
	return out, nil
}

// FlipHorizontal mirrors the image around its vertical axis, returning a new
// image.
func FlipHorizontal(im *Image) *Image {
	out := MustNew(im.W, im.H)
	copy(out.Pix, im.Pix)
	FlipHorizontalInPlace(out)
	return out
}

// FlipHorizontalInPlace mirrors the image around its vertical axis without
// allocating, swapping pixel triples within each row. It produces exactly the
// pixels FlipHorizontal would.
func FlipHorizontalInPlace(im *Image) {
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*im.W*Channels : (y+1)*im.W*Channels]
		for l, r := 0, im.W-1; l < r; l, r = l+1, r-1 {
			lo, ro := l*Channels, r*Channels
			row[lo], row[ro] = row[ro], row[lo]
			row[lo+1], row[ro+1] = row[ro+1], row[lo+1]
			row[lo+2], row[ro+2] = row[ro+2], row[lo+2]
		}
	}
}

// CropResize crops rect and resizes the result to w×h in one call; it is the
// kernel of RandomResizedCrop. The result is pool-backed (Release when done).
func CropResize(im *Image, rect Rect, w, h int) (*Image, error) {
	if !rect.Within(im.W, im.H) {
		return nil, fmt.Errorf("%w: crop %+v of %dx%d", ErrBadDimensions, rect, im.W, im.H)
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: resize to %dx%d", ErrBadDimensions, w, h)
	}
	out, err := NewPooled(w, h)
	if err != nil {
		return nil, err
	}
	cropResizeInto(im, rect, out)
	return out, nil
}

// cropResizeInto samples rect out of im directly into dst, fusing the crop
// copy and the bilinear resize into one pass: no intermediate crop image is
// ever materialized. The arithmetic is identical to Resize run over
// Crop(im, rect), so outputs are bit-for-bit the same.
func cropResizeInto(im *Image, rect Rect, dst *Image) {
	w, h := dst.W, dst.H
	if w == rect.W && h == rect.H {
		// Pure crop: row-wise copy, exactly what Crop does.
		for y := 0; y < h; y++ {
			srcOff := im.offset(rect.X, rect.Y+y)
			dstOff := dst.offset(0, y)
			copy(dst.Pix[dstOff:dstOff+w*Channels], im.Pix[srcOff:srcOff+w*Channels])
		}
		return
	}
	xRatio := float64(rect.W) / float64(w)
	yRatio := float64(rect.H) / float64(h)
	for y := 0; y < h; y++ {
		srcY := (float64(y)+0.5)*yRatio - 0.5
		if srcY < 0 {
			srcY = 0
		}
		y0 := int(srcY)
		y1 := y0 + 1
		if y1 >= rect.H {
			y1 = rect.H - 1
		}
		fy := srcY - float64(y0)
		for x := 0; x < w; x++ {
			srcX := (float64(x)+0.5)*xRatio - 0.5
			if srcX < 0 {
				srcX = 0
			}
			x0 := int(srcX)
			x1 := x0 + 1
			if x1 >= rect.W {
				x1 = rect.W - 1
			}
			fx := srcX - float64(x0)

			o00 := im.offset(rect.X+x0, rect.Y+y0)
			o10 := im.offset(rect.X+x1, rect.Y+y0)
			o01 := im.offset(rect.X+x0, rect.Y+y1)
			o11 := im.offset(rect.X+x1, rect.Y+y1)
			d := dst.offset(x, y)
			for c := 0; c < Channels; c++ {
				top := float64(im.Pix[o00+c])*(1-fx) + float64(im.Pix[o10+c])*fx
				bot := float64(im.Pix[o01+c])*(1-fx) + float64(im.Pix[o11+c])*fx
				v := top*(1-fy) + bot*fy
				dst.Pix[d+c] = uint8(v + 0.5)
			}
		}
	}
}
