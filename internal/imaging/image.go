// Package imaging implements the pixel-level substrate for the preprocessing
// pipeline: an interleaved RGB image type, geometric transforms
// (crop/resize/flip), a synthetic photo generator, and SJPG — a real lossy
// codec (YCbCr conversion, chroma subsampling, delta prediction, DEFLATE)
// that stands in for JPEG so that raw sample sizes vary with image content
// the way the paper's datasets do.
package imaging

import (
	"errors"
	"fmt"

	"repro/internal/bufpool"
)

// Image is an 8-bit RGB image with interleaved pixels. Pix holds
// W*H*3 bytes in row-major order: R,G,B for (0,0), then (1,0), ...
type Image struct {
	W, H int
	Pix  []uint8
}

// Channels is the number of interleaved channels per pixel.
const Channels = 3

// ErrBadDimensions reports a non-positive or inconsistent image geometry.
var ErrBadDimensions = errors.New("imaging: bad dimensions")

// New allocates a zeroed (black) image of the given size.
func New(w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDimensions, w, h)
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h*Channels)}, nil
}

// MustNew is New for sizes known to be valid; it panics on error.
func MustNew(w, h int) *Image {
	im, err := New(w, h)
	if err != nil {
		panic(err)
	}
	return im
}

// NewPooled allocates an image whose pixel buffer comes from the bufpool
// arena. The caller owns the image; calling Release when done returns the
// buffer to the pool. The pixels are NOT zeroed — callers must overwrite
// every byte (Decode and CropResizeInto both do).
func NewPooled(w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDimensions, w, h)
	}
	return &Image{W: w, H: h, Pix: bufpool.GetBytes(w * h * Channels)}, nil
}

// Release returns the pixel buffer to the bufpool arena and clears the
// image. It is safe on any image — buffers that did not come from the pool
// (New, FromPix over foreign memory) are dropped, not recycled — but must be
// called at most once, after which the image must not be used.
func (im *Image) Release() {
	if im == nil || im.Pix == nil {
		return
	}
	bufpool.PutBytes(im.Pix)
	im.Pix = nil
	im.W, im.H = 0, 0
}

// FromPix wraps an existing pixel buffer. The buffer length must equal
// w*h*3.
func FromPix(w, h int, pix []uint8) (*Image, error) {
	if w <= 0 || h <= 0 || len(pix) != w*h*Channels {
		return nil, fmt.Errorf("%w: %dx%d with %d bytes", ErrBadDimensions, w, h, len(pix))
	}
	return &Image{W: w, H: h, Pix: pix}, nil
}

// Pixels returns the number of pixels (W*H).
func (im *Image) Pixels() int { return im.W * im.H }

// ByteSize returns the in-memory size of the pixel buffer.
func (im *Image) ByteSize() int { return len(im.Pix) }

// offset returns the index of the R byte of pixel (x, y).
func (im *Image) offset(x, y int) int { return (y*im.W + x) * Channels }

// At returns the RGB triple at (x, y). Callers must pass in-bounds
// coordinates.
func (im *Image) At(x, y int) (r, g, b uint8) {
	o := im.offset(x, y)
	return im.Pix[o], im.Pix[o+1], im.Pix[o+2]
}

// Set stores the RGB triple at (x, y). Callers must pass in-bounds
// coordinates.
func (im *Image) Set(x, y int, r, g, b uint8) {
	o := im.offset(x, y)
	im.Pix[o], im.Pix[o+1], im.Pix[o+2] = r, g, b
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	pix := make([]uint8, len(im.Pix))
	copy(pix, im.Pix)
	return &Image{W: im.W, H: im.H, Pix: pix}
}

// Equal reports whether two images have identical geometry and pixels.
func (im *Image) Equal(other *Image) bool {
	if other == nil || im.W != other.W || im.H != other.H {
		return false
	}
	for i := range im.Pix {
		if im.Pix[i] != other.Pix[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest per-channel absolute difference between two
// same-sized images, used to bound codec loss in tests.
func (im *Image) MaxAbsDiff(other *Image) (int, error) {
	if other == nil || im.W != other.W || im.H != other.H {
		return 0, fmt.Errorf("%w: mismatched images", ErrBadDimensions)
	}
	max := 0
	for i := range im.Pix {
		d := int(im.Pix[i]) - int(other.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max, nil
}

// String summarizes the image for logs.
func (im *Image) String() string {
	return fmt.Sprintf("Image(%dx%d, %dB)", im.W, im.H, im.ByteSize())
}
