package imaging

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/bufpool"
)

// SJPR is the progressive companion to SJPG: the same quantized YCbCr
// planes, but emitted as L ordered scans — a coarse base plane followed by
// one-bit refinement deltas — so that any prefix of the concatenated scans
// decodes to a valid lower-fidelity image. A scan index (per-scan length +
// CRC32-C) lives in the header, which lets a server slice a stored
// container to a requested fidelity without re-encoding, and lets the
// decoder detect mid-scan truncation or index corruption with a typed
// error instead of producing a wrong image.
//
// Container layout (big-endian):
//
//	0..3    magic "SJPR"
//	4       version (1)
//	5       quality (1..100, the SJPG quality the full container decodes at)
//	6..9    W
//	10..13  H
//	14      L, the scan count (1..MaxScans)
//	15..16  sidecar length S (0 when absent)
//	17..    S opaque sidecar bytes (label/metadata stream, typically
//	        dictionary-compressed by internal/compressor; part of every
//	        prefix so labels survive fidelity reduction)
//	...     scan index: L x { payload length u32, CRC32-C u32 }
//	...     L DEFLATE-compressed scan payloads, concatenated
//
// Scan 0 carries the quantized planes right-shifted by L-1 extra bits
// (delta-predicted like SJPG); scan j>0 carries the j-th refinement bit of
// every plane value. Decoding k scans reconstructs the planes at
// quality-shift + (L-k) extra quantization; decoding all L scans is
// pixel-identical to Decode(Encode(im, quality)).
const (
	sjprMagic       = "SJPR"
	sjprVersion     = 1
	sjprFixedHeader = 4 + 1 + 1 + 4 + 4 + 1 + 2 // magic, ver, quality, W, H, L, sidecar len

	// MaxScans bounds the scan count: each refinement scan adds one bit of
	// plane precision, and the quality-derived shifts leave at most ~5
	// meaningful bits, so more than 4 scans would refine noise.
	MaxScans = 4

	// MaxSidecar bounds the embedded sidecar stream (u16 length field).
	MaxSidecar = 1<<16 - 1
)

// Progressive-container errors. ErrTruncated is the typed "prefix ends
// mid-scan" signal: a well-formed prefix always ends exactly on a scan
// boundary (SlicePrefix guarantees this), so anything else is either
// transport damage or a corrupt index.
var (
	ErrTruncated = errors.New("imaging: SJPR prefix truncated mid-scan")
	ErrBadScans  = fmt.Errorf("imaging: scan count must be in [1, %d]", MaxScans)
)

var sjprCRC = crc32.MakeTable(crc32.Castagnoli)

// IsProgressive reports whether data begins with the SJPR magic.
func IsProgressive(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == sjprMagic
}

// EncodeProgressive compresses im into an SJPR container with the given
// scan count and no sidecar. The returned slice is freshly allocated and
// owned by the caller.
func EncodeProgressive(im *Image, quality, scans int) ([]byte, error) {
	return EncodeProgressiveSidecar(im, quality, scans, nil)
}

// EncodeProgressiveSidecar is EncodeProgressive with an opaque sidecar
// stream (at most MaxSidecar bytes) embedded in the header region, so it is
// present in every fidelity prefix.
func EncodeProgressiveSidecar(im *Image, quality, scans int, sidecar []byte) ([]byte, error) {
	if quality < 1 || quality > 100 {
		return nil, fmt.Errorf("%w: %d", ErrBadQuality, quality)
	}
	if scans < 1 || scans > MaxScans {
		return nil, fmt.Errorf("%w: %d", ErrBadScans, scans)
	}
	if len(sidecar) > MaxSidecar {
		return nil, fmt.Errorf("imaging: sidecar of %d bytes exceeds %d", len(sidecar), MaxSidecar)
	}
	yShift, cShift := shifts(quality)

	cw, ch := (im.W+1)/2, (im.H+1)/2
	total := im.W*im.H + 2*cw*ch
	// planes holds the SJPG-quantized values; scratch is re-filled per scan
	// with that scan's payload (shifted base or refinement bits).
	planes := bufpool.GetBytes(2 * total)
	defer bufpool.PutBytes(planes)
	scratch := planes[total:]
	planes = planes[:total]
	yPlane := planes[:im.W*im.H]
	cbPlane := planes[im.W*im.H : im.W*im.H+cw*ch]
	crPlane := planes[im.W*im.H+cw*ch:]
	fillPlanes(im, yShift, cShift, yPlane, cbPlane, crPlane)

	body := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(body)
	body.Reset()
	zw := flateWriterPool.Get().(*flate.Writer)
	defer flateWriterPool.Put(zw)

	lens := make([]int, scans)
	crcs := make([]uint32, scans)
	for j := 0; j < scans; j++ {
		if j == 0 {
			extra := uint(scans - 1)
			for i, v := range planes {
				scratch[i] = v >> extra
			}
			deltaEncode(scratch[:im.W*im.H], im.W)
			deltaEncode(scratch[im.W*im.H:im.W*im.H+cw*ch], cw)
			deltaEncode(scratch[im.W*im.H+cw*ch:], cw)
		} else {
			bit := uint(scans - 1 - j)
			for i, v := range planes {
				scratch[i] = (v >> bit) & 1
			}
		}
		start := body.Len()
		zw.Reset(body)
		if _, err := zw.Write(scratch); err != nil {
			return nil, fmt.Errorf("imaging: compress scan %d: %w", j, err)
		}
		if err := zw.Close(); err != nil {
			return nil, fmt.Errorf("imaging: finish scan %d: %w", j, err)
		}
		lens[j] = body.Len() - start
		crcs[j] = crc32.Checksum(body.Bytes()[start:], sjprCRC)
	}

	out := make([]byte, 0, sjprFixedHeader+len(sidecar)+8*scans+body.Len())
	out = append(out, sjprMagic...)
	out = append(out, sjprVersion, uint8(quality))
	out = binary.BigEndian.AppendUint32(out, uint32(im.W))
	out = binary.BigEndian.AppendUint32(out, uint32(im.H))
	out = append(out, uint8(scans))
	out = binary.BigEndian.AppendUint16(out, uint16(len(sidecar)))
	out = append(out, sidecar...)
	for j := 0; j < scans; j++ {
		out = binary.BigEndian.AppendUint32(out, uint32(lens[j]))
		out = binary.BigEndian.AppendUint32(out, crcs[j])
	}
	return append(out, body.Bytes()...), nil
}

// sjprHeader is the parsed fixed header + scan index of a container or
// container prefix.
type sjprHeader struct {
	w, h    int
	quality int
	scans   int    // L, the total scan count recorded in the header
	sidecar []byte // subslice of the input, may be empty
	lens    [MaxScans]int
	crcs    [MaxScans]uint32
	body    int // offset of scan 0's payload
}

// prefixEnd returns the container offset one past scan k-1's payload.
func (h *sjprHeader) prefixEnd(k int) int {
	end := h.body
	for j := 0; j < k; j++ {
		end += h.lens[j]
	}
	return end
}

// present returns how many complete scans a blob of n bytes carries, or -1
// if n does not land exactly on a scan boundary.
func (h *sjprHeader) present(n int) int {
	end := h.body
	for k := 0; k <= h.scans; k++ {
		if n == end {
			return k
		}
		if k == h.scans || n < end {
			return -1
		}
		end += h.lens[k]
	}
	return -1
}

// parseProgressive validates the header and scan index. It requires only
// that data is long enough to hold them — payload completeness is the
// caller's concern (via present/prefixEnd).
func parseProgressive(data []byte) (sjprHeader, error) {
	var h sjprHeader
	if len(data) < sjprFixedHeader || string(data[:4]) != sjprMagic {
		return h, ErrCorrupt
	}
	if data[4] != sjprVersion {
		return h, fmt.Errorf("%w: SJPR %d", ErrUnsupported, data[4])
	}
	h.quality = int(data[5])
	if h.quality < 1 || h.quality > 100 {
		return h, fmt.Errorf("%w: quality %d", ErrCorrupt, h.quality)
	}
	h.w = int(binary.BigEndian.Uint32(data[6:10]))
	h.h = int(binary.BigEndian.Uint32(data[10:14]))
	const maxDim = 1 << 16
	if h.w <= 0 || h.h <= 0 || h.w > maxDim || h.h > maxDim {
		return h, fmt.Errorf("%w: dims %dx%d", ErrCorrupt, h.w, h.h)
	}
	h.scans = int(data[14])
	if h.scans < 1 || h.scans > MaxScans {
		return h, fmt.Errorf("%w: scan count %d", ErrCorrupt, h.scans)
	}
	side := int(binary.BigEndian.Uint16(data[15:17]))
	idx := sjprFixedHeader + side
	h.body = idx + 8*h.scans
	if len(data) < h.body {
		return h, fmt.Errorf("%w: %d bytes, header needs %d", ErrCorrupt, len(data), h.body)
	}
	h.sidecar = data[sjprFixedHeader:idx]
	// A scan payload can never exceed the DEFLATE worst case for its
	// uncompressed plane size; a loose per-scan cap rejects absurd indexes
	// before any allocation.
	maxScan := h.w*h.h*2 + 1<<16
	for j := 0; j < h.scans; j++ {
		h.lens[j] = int(binary.BigEndian.Uint32(data[idx+8*j : idx+8*j+4]))
		h.crcs[j] = binary.BigEndian.Uint32(data[idx+8*j+4 : idx+8*j+8])
		if h.lens[j] <= 0 || h.lens[j] > maxScan {
			return h, fmt.Errorf("%w: scan %d length %d", ErrCorrupt, j, h.lens[j])
		}
	}
	return h, nil
}

// ProgressiveInfo returns the geometry, quality, total scan count, and the
// number of complete scans present in data (which may be a prefix).
func ProgressiveInfo(data []byte) (w, h, quality, scans, present int, err error) {
	hd, err := parseProgressive(data)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	p := hd.present(len(data))
	if p < 1 {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	return hd.w, hd.h, hd.quality, hd.scans, p, nil
}

// ProgressiveSidecar returns the sidecar stream embedded in a container or
// prefix, as a subslice of data (callers must not mutate it).
func ProgressiveSidecar(data []byte) ([]byte, error) {
	hd, err := parseProgressive(data)
	if err != nil {
		return nil, err
	}
	return hd.sidecar, nil
}

// PrefixSize returns the byte length of the prefix of data carrying the
// first k scans (header, sidecar, and full scan index included). k is
// clamped to the container's scan count; k < 1 is an error — every prefix
// carries at least the base scan. data must hold at least the header and
// index (a full container, or any valid prefix at least k scans deep).
func PrefixSize(data []byte, k int) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("%w: prefix of %d scans", ErrBadScans, k)
	}
	hd, err := parseProgressive(data)
	if err != nil {
		return 0, err
	}
	if k > hd.scans {
		k = hd.scans
	}
	end := hd.prefixEnd(k)
	if len(data) < end {
		return 0, fmt.Errorf("%w: %d bytes, %d-scan prefix needs %d", ErrTruncated, len(data), k, end)
	}
	return end, nil
}

// SlicePrefix returns the k-scan prefix of data as a zero-copy subslice —
// the serving hot path: a storage server slices the stored container
// without re-encoding. The result aliases data, so it inherits data's
// ownership: callers must not hand it to an owner that recycles buffers
// (copy into a pooled buffer first, as storage's prefix-serve path does).
func SlicePrefix(data []byte, k int) ([]byte, error) {
	end, err := PrefixSize(data, k)
	if err != nil {
		return nil, err
	}
	return data[:end], nil
}

// DecodeProgressive decodes however many complete scans data carries and
// returns the image with the count. A blob not ending exactly on a scan
// boundary returns ErrTruncated; a scan whose CRC32-C disagrees with the
// index returns ErrCorrupt — never a silently wrong image. The returned
// image is pool-backed; the caller should Release it when done.
func DecodeProgressive(data []byte) (*Image, int, error) {
	hd, err := parseProgressive(data)
	if err != nil {
		return nil, 0, err
	}
	k := hd.present(len(data))
	if k < 1 {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	im, err := decodeScans(data, &hd, k)
	return im, k, err
}

// DecodeAtFidelity decodes a full container (or a sufficiently deep prefix)
// using only its first k scans, producing the same pixels as decoding
// SlicePrefix(data, k) — the contract the cache's deep-hit path relies on.
func DecodeAtFidelity(data []byte, k int) (*Image, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: decode at %d scans", ErrBadScans, k)
	}
	hd, err := parseProgressive(data)
	if err != nil {
		return nil, err
	}
	if k > hd.scans {
		k = hd.scans
	}
	if end := hd.prefixEnd(k); len(data) < end {
		return nil, fmt.Errorf("%w: %d bytes, %d-scan prefix needs %d", ErrTruncated, len(data), k, end)
	}
	return decodeScans(data, &hd, k)
}

// decodeScans reconstructs the planes from the first k scans (payloads
// verified against the index CRCs) and dequantizes at the effective shift.
func decodeScans(data []byte, hd *sjprHeader, k int) (*Image, error) {
	yShift, cShift := shifts(hd.quality)
	cw, ch := (hd.w+1)/2, (hd.h+1)/2
	total := hd.w*hd.h + 2*cw*ch

	planes := bufpool.GetBytes(2 * total)
	defer bufpool.PutBytes(planes)
	scratch := planes[total:]
	planes = planes[:total]

	off := hd.body
	for j := 0; j < k; j++ {
		payload := data[off : off+hd.lens[j]]
		off += hd.lens[j]
		if crc32.Checksum(payload, sjprCRC) != hd.crcs[j] {
			return nil, fmt.Errorf("%w: scan %d CRC mismatch", ErrCorrupt, j)
		}
		dst := planes
		if j > 0 {
			dst = scratch
		}
		if err := inflateExact(payload, dst); err != nil {
			return nil, fmt.Errorf("%w: scan %d: %v", ErrCorrupt, j, err)
		}
		if j == 0 {
			deltaDecode(planes[:hd.w*hd.h], hd.w)
			deltaDecode(planes[hd.w*hd.h:hd.w*hd.h+cw*ch], cw)
			deltaDecode(planes[hd.w*hd.h+cw*ch:], cw)
			continue
		}
		for i, b := range scratch {
			if b > 1 {
				return nil, fmt.Errorf("%w: scan %d refinement byte %d", ErrCorrupt, j, b)
			}
			planes[i] = planes[i]<<1 | b
		}
	}

	extra := uint(hd.scans - k)
	return planesToImage(hd.w, hd.h, yShift+extra, cShift+extra,
		planes[:hd.w*hd.h], planes[hd.w*hd.h:hd.w*hd.h+cw*ch], planes[hd.w*hd.h+cw*ch:])
}

// inflateExact decompresses payload into dst, requiring the stream to yield
// exactly len(dst) bytes with nothing trailing.
func inflateExact(payload, dst []byte) error {
	pr := flateReaderPool.Get().(*pooledReader)
	defer pr.release()
	pr.reset(payload)
	if _, err := io.ReadFull(pr.zr, dst); err != nil {
		return fmt.Errorf("decompress: %v", err)
	}
	var trail [1]byte
	switch _, err := io.ReadFull(pr.zr, trail[:]); err {
	case io.EOF:
	case nil:
		return errors.New("trailing data")
	default:
		return fmt.Errorf("trailing garbage: %v", err)
	}
	if err := pr.zr.Close(); err != nil {
		return fmt.Errorf("close: %v", err)
	}
	return nil
}
