package imaging

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func synthFor(t testing.TB, seed uint64, w, h int, detail float64) *Image {
	t.Helper()
	im, err := Synthesize(SynthParams{W: w, H: h, Detail: detail, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// Full-depth progressive decode must be pixel-identical to the SJPG path at
// the same quality: the scans are a re-serialization of the same quantized
// planes, not a different codec.
func TestProgressiveFullMatchesSJPG(t *testing.T) {
	for _, q := range []int{30, 60, 80, 95} {
		for scans := 1; scans <= MaxScans; scans++ {
			im := synthFor(t, uint64(q*10+scans), 41, 29, 0.6)
			flat, err := Encode(im, q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Decode(flat)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := EncodeProgressive(im, q, scans)
			if err != nil {
				t.Fatal(err)
			}
			got, n, err := DecodeProgressive(prog)
			if err != nil {
				t.Fatalf("q=%d scans=%d: %v", q, scans, err)
			}
			if n != scans {
				t.Fatalf("q=%d scans=%d: decoded %d scans", q, scans, n)
			}
			if !got.Equal(want) {
				d, _ := got.MaxAbsDiff(want)
				t.Fatalf("q=%d scans=%d: full progressive decode differs from SJPG (max diff %d)", q, scans, d)
			}
			got.Release()
			want.Release()
		}
	}
}

// Property: for all seeds and scan counts, decoding the sliced k-scan
// prefix equals decoding the full container at fidelity k (the downsampled
// contract), and prefix sizes are strictly monotone in k.
func TestProgressivePrefixProperties(t *testing.T) {
	prop := func(seed uint64, wRaw, hRaw uint8, scansRaw uint8, detailRaw uint8) bool {
		w := 8 + int(wRaw)%48
		h := 8 + int(hRaw)%48
		scans := 1 + int(scansRaw)%MaxScans
		detail := float64(detailRaw) / 255
		im, err := Synthesize(SynthParams{W: w, H: h, Detail: detail, Seed: seed})
		if err != nil {
			t.Logf("synthesize: %v", err)
			return false
		}
		full, err := EncodeProgressive(im, 80, scans)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		prev := 0
		for k := 1; k <= scans; k++ {
			size, err := PrefixSize(full, k)
			if err != nil {
				t.Logf("prefix size k=%d: %v", k, err)
				return false
			}
			if size <= prev {
				t.Logf("prefix size not monotone at k=%d: %d <= %d", k, size, prev)
				return false
			}
			prev = size
			prefix, err := SlicePrefix(full, k)
			if err != nil {
				t.Logf("slice k=%d: %v", k, err)
				return false
			}
			fromPrefix, n, err := DecodeProgressive(prefix)
			if err != nil {
				t.Logf("decode prefix k=%d: %v", k, err)
				return false
			}
			if n != k {
				t.Logf("prefix k=%d decoded %d scans", k, n)
				return false
			}
			atFidelity, err := DecodeAtFidelity(full, k)
			if err != nil {
				t.Logf("decode at fidelity k=%d: %v", k, err)
				return false
			}
			eq := fromPrefix.Equal(atFidelity)
			fromPrefix.Release()
			atFidelity.Release()
			if !eq {
				t.Logf("prefix decode differs from at-fidelity decode at k=%d", k)
				return false
			}
		}
		if prev != len(full) {
			t.Logf("full prefix size %d != container size %d", prev, len(full))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Fidelity is a quality ladder: each additional scan must not increase the
// reconstruction error against the full-fidelity decode, and shallower
// prefixes must cost fewer bytes.
func TestProgressiveFidelityLadder(t *testing.T) {
	im := synthFor(t, 7, 96, 64, 0.5)
	full, err := EncodeProgressive(im, 80, MaxScans)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := DecodeAtFidelity(full, MaxScans)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Release()
	prevErr := 1 << 10
	for k := 1; k <= MaxScans; k++ {
		im2, err := DecodeAtFidelity(full, k)
		if err != nil {
			t.Fatal(err)
		}
		d, err := im2.MaxAbsDiff(ref)
		im2.Release()
		if err != nil {
			t.Fatal(err)
		}
		if d > prevErr {
			t.Fatalf("fidelity ladder not monotone: k=%d has max error %d > %d", k, d, prevErr)
		}
		prevErr = d
	}
	if prevErr != 0 {
		t.Fatalf("full-depth decode should match itself, max error %d", prevErr)
	}
}

// Truncation mid-scan and index corruption must surface as typed errors —
// never as a quietly wrong image.
func TestProgressiveTruncationAndCorruption(t *testing.T) {
	im := synthFor(t, 11, 32, 24, 0.5)
	full, err := EncodeProgressiveSidecar(im, 80, 3, []byte("labels:42"))
	if err != nil {
		t.Fatal(err)
	}
	boundaries := map[int]bool{}
	for k := 1; k <= 3; k++ {
		n, err := PrefixSize(full, k)
		if err != nil {
			t.Fatal(err)
		}
		boundaries[n] = true
	}
	hdr, err := PrefixSize(full, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 5))
	for trial := 0; trial < 64; trial++ {
		n := hdr + rng.IntN(len(full)-hdr)
		if boundaries[n] {
			continue
		}
		if im2, _, err := DecodeProgressive(full[:n]); err == nil {
			im2.Release()
			t.Fatalf("mid-scan truncation to %d bytes decoded without error", n)
		} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrTruncated/ErrCorrupt", n, err)
		}
	}

	// Corrupt a scan payload byte: the index CRC must catch it.
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-1] ^= 0xFF
	if im2, _, err := DecodeProgressive(corrupt); err == nil {
		im2.Release()
		t.Fatal("corrupted scan payload decoded without error")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted payload: got %v, want ErrCorrupt", err)
	}

	// Corrupt the scan index itself (first scan length field).
	corrupt = append(corrupt[:0], full...)
	side, err := ProgressiveSidecar(full)
	if err != nil {
		t.Fatal(err)
	}
	idx := sjprFixedHeader + len(side)
	binary.BigEndian.PutUint32(corrupt[idx:idx+4], 1<<30)
	if im2, _, err := DecodeProgressive(corrupt); err == nil {
		im2.Release()
		t.Fatal("corrupted scan index decoded without error")
	} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("corrupted index: got %v, want ErrCorrupt/ErrTruncated", err)
	}
}

// The sidecar rides in the header region, so every fidelity prefix carries
// it verbatim.
func TestProgressiveSidecarSurvivesSlicing(t *testing.T) {
	im := synthFor(t, 13, 20, 20, 0.3)
	meta := []byte("class=7;bbox=1,2,3,4")
	full, err := EncodeProgressiveSidecar(im, 80, MaxScans, meta)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= MaxScans; k++ {
		prefix, err := SlicePrefix(full, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ProgressiveSidecar(prefix)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, meta) {
			t.Fatalf("k=%d: sidecar %q, want %q", k, got, meta)
		}
	}
	if _, err := EncodeProgressiveSidecar(im, 80, 2, make([]byte, MaxSidecar+1)); err == nil {
		t.Fatal("oversized sidecar accepted")
	}
}

// ProgressiveInfo reports scans present for both full containers and
// prefixes; IsProgressive distinguishes the two codecs by magic.
func TestProgressiveInfo(t *testing.T) {
	im := synthFor(t, 17, 24, 16, 0.4)
	full, err := EncodeProgressive(im, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Encode(im, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !IsProgressive(full) || IsProgressive(flat) {
		t.Fatal("IsProgressive misclassifies containers")
	}
	prefix, err := SlicePrefix(full, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, h, q, scans, present, err := ProgressiveInfo(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if w != 24 || h != 16 || q != 60 || scans != 3 || present != 2 {
		t.Fatalf("ProgressiveInfo = %d x %d q%d %d/%d", w, h, q, present, scans)
	}
	if _, err := EncodeProgressive(im, 60, MaxScans+1); err == nil {
		t.Fatal("scan count above MaxScans accepted")
	}
	if _, err := EncodeProgressive(im, 0, 2); err == nil {
		t.Fatal("quality 0 accepted")
	}
}

// SlicePrefix on the serving path must not copy or allocate: it returns a
// subslice of the stored container.
func TestSlicePrefixZeroCopy(t *testing.T) {
	im := synthFor(t, 19, 64, 48, 0.5)
	full, err := EncodeProgressive(im, 80, MaxScans)
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := SlicePrefix(full, 2)
	if err != nil {
		t.Fatal(err)
	}
	if &prefix[0] != &full[0] {
		t.Fatal("SlicePrefix copied the container")
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := SlicePrefix(full, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("SlicePrefix allocates %.1f/op, want 0", allocs)
	}
}
