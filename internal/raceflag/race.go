//go:build race

// Package raceflag reports whether the race detector is compiled in.
// Allocation-budget tests consult it: -race instrumentation deliberately
// degrades sync.Pool caching (it randomly drops pooled items to provoke
// races), so steady-state allocation measurements are meaningless there.
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = true
