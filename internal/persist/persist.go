// Package persist serializes profiled traces and offload plans so the
// profiling pass (expensive: a full epoch) can run once and its outputs be
// reused across training runs and tools — sophon-profile writes a trace,
// sophon-train loads it and/or a precomputed plan.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/policy"
)

// File format constants.
const (
	traceMagic = "SOPHTRC1"
	planMagic  = "SOPHPLN1"
	maxName    = 1 << 10
	maxRecords = 1 << 26
)

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("persist: corrupt stream")

// WriteTrace serializes a trace.
func WriteTrace(w io.Writer, tr *dataset.Trace) error {
	if tr == nil {
		return errors.New("persist: nil trace")
	}
	if len(tr.Name) > maxName {
		return fmt.Errorf("persist: trace name of %d bytes too long", len(tr.Name))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := writeString(bw, tr.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(tr.N())); err != nil {
		return err
	}
	for i := range tr.Records {
		r := &tr.Records[i]
		fields := []interface{}{
			r.ID, r.RawSize, int32(r.Width), int32(r.Height),
		}
		for _, f := range fields {
			if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
				return err
			}
		}
		for _, s := range r.StageSizes {
			if err := binary.Write(bw, binary.LittleEndian, s); err != nil {
				return err
			}
		}
		for _, d := range r.OpTimes {
			if err := binary.Write(bw, binary.LittleEndian, int64(d)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace.
func ReadTrace(r io.Reader) (*dataset.Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrCorrupt, err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrCorrupt, err)
	}
	if n == 0 || n > maxRecords {
		return nil, fmt.Errorf("%w: %d records", ErrCorrupt, n)
	}
	tr := &dataset.Trace{Name: name, Records: make([]dataset.Record, n)}
	for i := range tr.Records {
		rec := &tr.Records[i]
		var w32, h32 int32
		for _, dst := range []interface{}{&rec.ID, &rec.RawSize, &w32, &h32} {
			if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
				return nil, fmt.Errorf("%w: record %d: %v", ErrCorrupt, i, err)
			}
		}
		rec.Width, rec.Height = int(w32), int(h32)
		for j := range rec.StageSizes {
			if err := binary.Read(br, binary.LittleEndian, &rec.StageSizes[j]); err != nil {
				return nil, fmt.Errorf("%w: record %d sizes: %v", ErrCorrupt, i, err)
			}
		}
		for j := range rec.OpTimes {
			var ns int64
			if err := binary.Read(br, binary.LittleEndian, &ns); err != nil {
				return nil, fmt.Errorf("%w: record %d times: %v", ErrCorrupt, i, err)
			}
			rec.OpTimes[j] = time.Duration(ns)
		}
	}
	// A well-formed stream ends here.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data", ErrCorrupt)
	}
	return tr, nil
}

// WritePlan serializes a plan.
func WritePlan(w io.Writer, p *policy.Plan) error {
	if p == nil {
		return errors.New("persist: nil plan")
	}
	if len(p.Name) > maxName {
		return fmt.Errorf("persist: plan name of %d bytes too long", len(p.Name))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(planMagic); err != nil {
		return err
	}
	if err := writeString(bw, p.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(p.N())); err != nil {
		return err
	}
	if _, err := bw.Write(p.Splits); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPlan deserializes a plan.
func ReadPlan(r io.Reader) (*policy.Plan, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(planMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrCorrupt, err)
	}
	if string(magic) != planMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrCorrupt, err)
	}
	if n == 0 || n > maxRecords {
		return nil, fmt.Errorf("%w: %d splits", ErrCorrupt, n)
	}
	splits := make([]uint8, n)
	if _, err := io.ReadFull(br, splits); err != nil {
		return nil, fmt.Errorf("%w: splits: %v", ErrCorrupt, err)
	}
	for i, s := range splits {
		if int(s) > dataset.OpCount {
			return nil, fmt.Errorf("%w: split %d of sample %d out of range", ErrCorrupt, s, i)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data", ErrCorrupt)
	}
	return &policy.Plan{Name: name, Splits: splits}, nil
}

// SaveTrace writes a trace to path.
func SaveTrace(path string, tr *dataset.Trace) error {
	return saveFile(path, func(w io.Writer) error { return WriteTrace(w, tr) })
}

// LoadTrace reads a trace from path.
func LoadTrace(path string) (*dataset.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// SavePlan writes a plan to path.
func SavePlan(path string, p *policy.Plan) error {
	return saveFile(path, func(w io.Writer) error { return WritePlan(w, p) })
}

// LoadPlan reads a plan from path.
func LoadPlan(path string) (*policy.Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPlan(f)
}

func saveFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", fmt.Errorf("%w: string length: %v", ErrCorrupt, err)
	}
	if int(n) > maxName {
		return "", fmt.Errorf("%w: string of %d bytes", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: string body: %v", ErrCorrupt, err)
	}
	return string(buf), nil
}
