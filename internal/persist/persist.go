// Package persist serializes profiled traces and offload plans so the
// profiling pass (expensive: a full epoch) can run once and its outputs be
// reused across training runs and tools — sophon-profile writes a trace,
// sophon-train loads it and/or a precomputed plan.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/imaging"
	"repro/internal/policy"
)

// File format constants. Plans have three on-disk generations: v1 is the
// bare plan, v2 prefixes it with a control-plane header (plan version + the
// fingerprint of the environment it was computed against), and v3 appends
// the per-sample fidelity vector of progressive plans after the splits.
// Readers accept all three; writers emit the oldest format that can carry
// the plan, so fidelity-free plans keep producing byte-identical v2 files.
const (
	traceMagic  = "SOPHTRC1"
	planMagic   = "SOPHPLN1"
	planMagicV2 = "SOPHPLN2"
	planMagicV3 = "SOPHPLN3"
	maxName     = 1 << 10
	maxRecords  = 1 << 26
)

// PlanMeta is the v2 plan header. Zero for plans loaded from v1 files.
type PlanMeta struct {
	// Version is the control-plane plan version the file captured (0 when
	// the file predates versioning).
	Version policy.PlanVersion
	// EnvFingerprint is policy.Env.Fingerprint() of the planning environment.
	EnvFingerprint uint64
}

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("persist: corrupt stream")

// WriteTrace serializes a trace.
func WriteTrace(w io.Writer, tr *dataset.Trace) error {
	if tr == nil {
		return errors.New("persist: nil trace")
	}
	if len(tr.Name) > maxName {
		return fmt.Errorf("persist: trace name of %d bytes too long", len(tr.Name))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := writeString(bw, tr.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(tr.N())); err != nil {
		return err
	}
	for i := range tr.Records {
		r := &tr.Records[i]
		fields := []interface{}{
			r.ID, r.RawSize, int32(r.Width), int32(r.Height),
		}
		for _, f := range fields {
			if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
				return err
			}
		}
		for _, s := range r.StageSizes {
			if err := binary.Write(bw, binary.LittleEndian, s); err != nil {
				return err
			}
		}
		for _, d := range r.OpTimes {
			if err := binary.Write(bw, binary.LittleEndian, int64(d)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace.
func ReadTrace(r io.Reader) (*dataset.Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrCorrupt, err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrCorrupt, err)
	}
	if n == 0 || n > maxRecords {
		return nil, fmt.Errorf("%w: %d records", ErrCorrupt, n)
	}
	tr := &dataset.Trace{Name: name, Records: make([]dataset.Record, n)}
	for i := range tr.Records {
		rec := &tr.Records[i]
		var w32, h32 int32
		for _, dst := range []interface{}{&rec.ID, &rec.RawSize, &w32, &h32} {
			if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
				return nil, fmt.Errorf("%w: record %d: %v", ErrCorrupt, i, err)
			}
		}
		rec.Width, rec.Height = int(w32), int(h32)
		for j := range rec.StageSizes {
			if err := binary.Read(br, binary.LittleEndian, &rec.StageSizes[j]); err != nil {
				return nil, fmt.Errorf("%w: record %d sizes: %v", ErrCorrupt, i, err)
			}
		}
		for j := range rec.OpTimes {
			var ns int64
			if err := binary.Read(br, binary.LittleEndian, &ns); err != nil {
				return nil, fmt.Errorf("%w: record %d times: %v", ErrCorrupt, i, err)
			}
			rec.OpTimes[j] = time.Duration(ns)
		}
	}
	// A well-formed stream ends here.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data", ErrCorrupt)
	}
	return tr, nil
}

// WritePlan serializes a plan in the legacy v1 format (no control-plane
// header) — unless the plan carries a fidelity dimension, which v1 cannot
// express; such plans are promoted to v3 with a zero header rather than
// silently flattened to full fidelity.
func WritePlan(w io.Writer, p *policy.Plan) error {
	if p != nil && p.HasFidelity() {
		return writePlan(w, p, planMagicV3, PlanMeta{})
	}
	return writePlan(w, p, planMagic, PlanMeta{})
}

// WritePlanVersioned serializes a plan with its control-plane header: v2
// for discrete plans (byte-identical to earlier releases), v3 when the
// plan carries a fidelity vector.
func WritePlanVersioned(w io.Writer, p *policy.Plan, meta PlanMeta) error {
	if p != nil && p.HasFidelity() {
		return writePlan(w, p, planMagicV3, meta)
	}
	return writePlan(w, p, planMagicV2, meta)
}

// WritePlanSnapshot serializes a control-plane snapshot's plan in the v2
// format, deriving the header from the snapshot itself.
func WritePlanSnapshot(w io.Writer, snap *policy.PlanSnapshot) error {
	if snap == nil {
		return errors.New("persist: nil snapshot")
	}
	return WritePlanVersioned(w, snap.Plan, PlanMeta{
		Version:        snap.Version,
		EnvFingerprint: snap.Env.Fingerprint(),
	})
}

func writePlan(w io.Writer, p *policy.Plan, magic string, meta PlanMeta) error {
	if p == nil {
		return errors.New("persist: nil plan")
	}
	if len(p.Name) > maxName {
		return fmt.Errorf("persist: plan name of %d bytes too long", len(p.Name))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if magic == planMagicV2 || magic == planMagicV3 {
		if err := binary.Write(bw, binary.LittleEndian, uint32(meta.Version)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, meta.EnvFingerprint); err != nil {
			return err
		}
	}
	if err := writeString(bw, p.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(p.N())); err != nil {
		return err
	}
	if _, err := bw.Write(p.Splits); err != nil {
		return err
	}
	if magic == planMagicV3 {
		fid := p.Fidelity
		if len(fid) != p.N() {
			return fmt.Errorf("persist: fidelity vector covers %d of %d samples", len(fid), p.N())
		}
		if _, err := bw.Write(fid); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPlan deserializes a plan from either format generation, discarding the
// v2 header.
func ReadPlan(r io.Reader) (*policy.Plan, error) {
	p, _, err := ReadPlanVersioned(r)
	return p, err
}

// ReadPlanVersioned deserializes a plan from either format generation. Plans
// from v1 files return a zero PlanMeta.
func ReadPlanVersioned(r io.Reader) (*policy.Plan, PlanMeta, error) {
	var meta PlanMeta
	br := bufio.NewReader(r)
	magic := make([]byte, len(planMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, meta, fmt.Errorf("%w: magic: %v", ErrCorrupt, err)
	}
	progressive := false
	switch string(magic) {
	case planMagic:
	case planMagicV2, planMagicV3:
		progressive = string(magic) == planMagicV3
		var v uint32
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, meta, fmt.Errorf("%w: plan version: %v", ErrCorrupt, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &meta.EnvFingerprint); err != nil {
			return nil, meta, fmt.Errorf("%w: env fingerprint: %v", ErrCorrupt, err)
		}
		meta.Version = policy.PlanVersion(v)
	default:
		return nil, meta, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	name, err := readString(br)
	if err != nil {
		return nil, meta, err
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, meta, fmt.Errorf("%w: count: %v", ErrCorrupt, err)
	}
	if n == 0 || n > maxRecords {
		return nil, meta, fmt.Errorf("%w: %d splits", ErrCorrupt, n)
	}
	splits := make([]uint8, n)
	if _, err := io.ReadFull(br, splits); err != nil {
		return nil, meta, fmt.Errorf("%w: splits: %v", ErrCorrupt, err)
	}
	for i, s := range splits {
		if int(s) > dataset.OpCount {
			return nil, meta, fmt.Errorf("%w: split %d of sample %d out of range", ErrCorrupt, s, i)
		}
	}
	var fidelity []uint8
	if progressive {
		fidelity = make([]uint8, n)
		if _, err := io.ReadFull(br, fidelity); err != nil {
			return nil, meta, fmt.Errorf("%w: fidelity: %v", ErrCorrupt, err)
		}
		for i, f := range fidelity {
			if int(f) >= imaging.MaxScans {
				return nil, meta, fmt.Errorf("%w: fidelity %d of sample %d out of range", ErrCorrupt, f, i)
			}
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, meta, fmt.Errorf("%w: trailing data", ErrCorrupt)
	}
	return &policy.Plan{Name: name, Splits: splits, Fidelity: fidelity}, meta, nil
}

// SaveTrace writes a trace to path.
func SaveTrace(path string, tr *dataset.Trace) error {
	return saveFile(path, func(w io.Writer) error { return WriteTrace(w, tr) })
}

// LoadTrace reads a trace from path.
func LoadTrace(path string) (*dataset.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// SavePlan writes a plan to path.
func SavePlan(path string, p *policy.Plan) error {
	return saveFile(path, func(w io.Writer) error { return WritePlan(w, p) })
}

// LoadPlan reads a plan from path (either format generation).
func LoadPlan(path string) (*policy.Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPlan(f)
}

// SavePlanVersioned writes a plan with its v2 control-plane header to path.
func SavePlanVersioned(path string, p *policy.Plan, meta PlanMeta) error {
	return saveFile(path, func(w io.Writer) error { return WritePlanVersioned(w, p, meta) })
}

// LoadPlanVersioned reads a plan and its header from path (either format
// generation; v1 files give a zero header).
func LoadPlanVersioned(path string) (*policy.Plan, PlanMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, PlanMeta{}, err
	}
	defer f.Close()
	return ReadPlanVersioned(f)
}

func saveFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", fmt.Errorf("%w: string length: %v", ErrCorrupt, err)
	}
	if int(n) > maxName {
		return "", fmt.Errorf("%w: string of %d bytes", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: string body: %v", ErrCorrupt, err)
	}
	return string(buf), nil
}
