package persist

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/policy"
)

// FuzzReadPlan: the plan parser must never panic, and accepted plans
// round-trip.
func FuzzReadPlan(f *testing.F) {
	plan, err := policy.NewUniformPlan("p", 5, 2)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, plan); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WritePlan(&out, p); err != nil {
			t.Fatalf("accepted plan failed to write: %v", err)
		}
		again, err := ReadPlan(&out)
		if err != nil || again.N() != p.N() {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzReadTrace: the trace parser must never panic on arbitrary bytes.
func FuzzReadTrace(f *testing.F) {
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(3), 1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, got); err != nil {
			t.Fatalf("accepted trace failed to write: %v", err)
		}
	})
}
