package persist

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/policy"
)

// FuzzReadPlan: the plan parser must never panic, and accepted plans
// round-trip.
func FuzzReadPlan(f *testing.F) {
	plan, err := policy.NewUniformPlan("p", 5, 2)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, plan); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	if err := WritePlanVersioned(&buf, plan, PlanMeta{Version: 3, EnvFingerprint: 99}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	fid := &policy.Plan{Name: "fz", Splits: []uint8{0, 2, 0}, Fidelity: []uint8{2, 0, 1}}
	var v3 bytes.Buffer
	if err := WritePlanVersioned(&v3, fid, PlanMeta{Version: 4, EnvFingerprint: 7}); err != nil {
		f.Fatal(err)
	}
	f.Add(v3.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, meta, err := ReadPlanVersioned(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WritePlanVersioned(&out, p, meta); err != nil {
			t.Fatalf("accepted plan failed to write: %v", err)
		}
		again, meta2, err := ReadPlanVersioned(&out)
		if err != nil || again.N() != p.N() || meta2 != meta {
			t.Fatalf("round trip failed: %v (%+v vs %+v)", err, meta2, meta)
		}
	})
}

// FuzzReadTrace: the trace parser must never panic on arbitrary bytes.
func FuzzReadTrace(f *testing.F) {
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(3), 1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, got); err != nil {
			t.Fatalf("accepted trace failed to write: %v", err)
		}
	})
}
