package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
)

var goldenPlan = &policy.Plan{Name: "golden", Splits: []uint8{0, 3, 1, 2, 0, 4, 2, 0}}

// TestPlanVersionedRoundTrip: the v2 header survives a write/read cycle, and
// the unversioned reader accepts the same bytes.
func TestPlanVersionedRoundTrip(t *testing.T) {
	meta := PlanMeta{Version: 12, EnvFingerprint: 0xdeadbeef}
	var buf bytes.Buffer
	if err := WritePlanVersioned(&buf, goldenPlan, meta); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	p, got, err := ReadPlanVersioned(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("meta %+v, want %+v", got, meta)
	}
	if p.Name != goldenPlan.Name || !bytes.Equal(p.Splits, goldenPlan.Splits) {
		t.Fatalf("plan %+v", p)
	}
	// The plain reader tolerates the versioned format.
	if p2, err := ReadPlan(bytes.NewReader(raw)); err != nil || p2.N() != goldenPlan.N() {
		t.Fatalf("ReadPlan on v2 bytes: %v", err)
	}
}

// TestWritePlanSnapshot derives the header from the snapshot's env.
func TestWritePlanSnapshot(t *testing.T) {
	env := policy.Env{
		Bandwidth: netsim.Mbps(500), ComputeCores: 8, StorageCores: 4,
		StorageSlowdown: 1, GPU: gpu.AlexNet,
	}
	snap := &policy.PlanSnapshot{Version: 3, Plan: goldenPlan, Env: env}
	var buf bytes.Buffer
	if err := WritePlanSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	_, meta, err := ReadPlanVersioned(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 3 || meta.EnvFingerprint != env.Fingerprint() {
		t.Fatalf("snapshot meta %+v", meta)
	}
	if err := WritePlanSnapshot(&buf, nil); err == nil {
		t.Fatal("accepted nil snapshot")
	}
}

// TestPlanGoldenFiles pins both on-disk generations byte for byte: old files
// must stay readable forever, and the current writers must keep producing
// exactly these bytes.
func TestPlanGoldenFiles(t *testing.T) {
	v1, err := os.ReadFile(filepath.Join("testdata", "plan_v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	p, meta, err := ReadPlanVersioned(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if meta != (PlanMeta{}) {
		t.Fatalf("v1 golden produced meta %+v, want zero", meta)
	}
	if p.Name != "golden" || !bytes.Equal(p.Splits, goldenPlan.Splits) {
		t.Fatalf("v1 golden plan %+v", p)
	}
	var out bytes.Buffer
	if err := WritePlan(&out, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), v1) {
		t.Fatal("v1 writer no longer reproduces the golden bytes")
	}

	v2, err := os.ReadFile(filepath.Join("testdata", "plan_v2.golden"))
	if err != nil {
		t.Fatal(err)
	}
	wantMeta := PlanMeta{Version: 7, EnvFingerprint: 0xfeedface01020304}
	p2, meta2, err := ReadPlanVersioned(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if meta2 != wantMeta {
		t.Fatalf("v2 golden meta %+v, want %+v", meta2, wantMeta)
	}
	out.Reset()
	if err := WritePlanVersioned(&out, p2, meta2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), v2) {
		t.Fatal("v2 writer no longer reproduces the golden bytes")
	}
}

// TestPlanVersionedFileHelpers exercises the path-based save/load pair.
func TestPlanVersionedFileHelpers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.sophon")
	meta := PlanMeta{Version: 2, EnvFingerprint: 42}
	if err := SavePlanVersioned(path, goldenPlan, meta); err != nil {
		t.Fatal(err)
	}
	p, got, err := LoadPlanVersioned(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != meta || p.N() != goldenPlan.N() {
		t.Fatalf("loaded %+v %+v", p, got)
	}
	// LoadPlan reads the same file without the header.
	if p2, err := LoadPlan(path); err != nil || p2.N() != goldenPlan.N() {
		t.Fatalf("LoadPlan: %v", err)
	}
}

// TestReadPlanVersionedCorrupt covers truncated v2 headers.
func TestReadPlanVersionedCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePlanVersioned(&buf, goldenPlan, PlanMeta{Version: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{len(planMagicV2) + 2, len(planMagicV2) + 9} {
		if _, _, err := ReadPlanVersioned(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("accepted header truncated at %d", cut)
		}
	}
}
