package persist

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/policy"
)

func sampleTrace(t testing.TB, n int) *dataset.Trace {
	t.Helper()
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(n), 17)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace(t, 200)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.N() != tr.N() {
		t.Fatalf("header: %q/%d", got.Name, got.N())
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestPlanRoundTrip(t *testing.T) {
	tr := sampleTrace(t, 300)
	env := policy.Env{Bandwidth: 62.5e6, ComputeCores: 48, StorageCores: 4, StorageSlowdown: 1,
		GPU: gpu.AlexNet}
	plan, err := policy.NewSophon().Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != plan.Name || got.N() != plan.N() {
		t.Fatalf("header: %q/%d", got.Name, got.N())
	}
	for i := range plan.Splits {
		if got.Splits[i] != plan.Splits[i] {
			t.Fatalf("split %d differs", i)
		}
	}
}

func TestNilInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err == nil {
		t.Fatal("accepted nil trace")
	}
	if err := WritePlan(&buf, nil); err == nil {
		t.Fatal("accepted nil plan")
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	tr := sampleTrace(t, 5)
	var tbuf bytes.Buffer
	if err := WriteTrace(&tbuf, tr); err != nil {
		t.Fatal(err)
	}
	traceBytes := tbuf.Bytes()

	plan, _ := policy.NewUniformPlan("p", 5, 2)
	var pbuf bytes.Buffer
	if err := WritePlan(&pbuf, plan); err != nil {
		t.Fatal(err)
	}
	planBytes := pbuf.Bytes()

	traceCases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("XXXXXXXX"), traceBytes[8:]...),
		"plan magic": planBytes, // wrong kind of file
		"truncated":  traceBytes[:len(traceBytes)-3],
		"trailing":   append(append([]byte(nil), traceBytes...), 0xFF),
	}
	for name, b := range traceCases {
		if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
			t.Errorf("ReadTrace accepted %s", name)
		}
	}

	planCases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("YYYYYYYY"), planBytes[8:]...),
		"trace magic": traceBytes,
		"truncated":   planBytes[:len(planBytes)-1],
		"trailing":    append(append([]byte(nil), planBytes...), 1),
		"bad split": func() []byte {
			b := append([]byte(nil), planBytes...)
			b[len(b)-1] = 99 // split out of range
			return b
		}(),
	}
	for name, b := range planCases {
		if _, err := ReadPlan(bytes.NewReader(b)); err == nil {
			t.Errorf("ReadPlan accepted %s", name)
		}
	}
}

func TestSaveLoadFiles(t *testing.T) {
	dir := t.TempDir()
	tr := sampleTrace(t, 50)
	tracePath := filepath.Join(dir, "trace.bin")
	if err := SaveTrace(tracePath, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 50 {
		t.Fatalf("loaded %d records", got.N())
	}

	plan, _ := policy.NewUniformPlan("resize", 50, 2)
	planPath := filepath.Join(dir, "plan.bin")
	if err := SavePlan(planPath, plan); err != nil {
		t.Fatal(err)
	}
	lp, err := LoadPlan(planPath)
	if err != nil {
		t.Fatal(err)
	}
	if lp.OffloadedCount() != 50 {
		t.Fatalf("loaded plan offloads %d", lp.OffloadedCount())
	}

	if _, err := LoadTrace(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("loaded missing file")
	}
}

// Property: arbitrary valid plans round-trip exactly.
func TestPlanRoundTripProperty(t *testing.T) {
	f := func(name string, raw []byte) bool {
		if len(raw) == 0 || len(raw) > 1000 {
			return true
		}
		if len(name) > 200 {
			name = name[:200]
		}
		splits := make([]uint8, len(raw))
		for i, b := range raw {
			splits[i] = b % (dataset.OpCount + 1)
		}
		in := &policy.Plan{Name: name, Splits: splits}
		var buf bytes.Buffer
		if err := WritePlan(&buf, in); err != nil {
			return false
		}
		out, err := ReadPlan(&buf)
		if err != nil || out.Name != in.Name || out.N() != in.N() {
			return false
		}
		for i := range splits {
			if out.Splits[i] != splits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
