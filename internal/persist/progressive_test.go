package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/policy"
)

var goldenFidelityPlan = &policy.Plan{
	Name:     "golden-fid",
	Splits:   []uint8{0, 3, 0, 2, 0, 4, 0, 0},
	Fidelity: []uint8{1, 0, 3, 0, 2, 0, 0, 1},
}

// A plan carrying a fidelity vector round-trips through the v3 format with
// both the versioned and plain readers; a fidelity-free plan must keep
// producing byte-identical v2 output so pre-progressive files and tools
// stay interchangeable.
func TestPlanV3RoundTrip(t *testing.T) {
	meta := PlanMeta{Version: 9, EnvFingerprint: 0xabad1dea}
	var buf bytes.Buffer
	if err := WritePlanVersioned(&buf, goldenFidelityPlan, meta); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !bytes.HasPrefix(raw, []byte(planMagicV3)) {
		t.Fatalf("fidelity plan serialized with magic %q", raw[:8])
	}
	p, got, err := ReadPlanVersioned(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("meta %+v, want %+v", got, meta)
	}
	if p.Name != goldenFidelityPlan.Name || !bytes.Equal(p.Splits, goldenFidelityPlan.Splits) ||
		!bytes.Equal(p.Fidelity, goldenFidelityPlan.Fidelity) {
		t.Fatalf("plan %+v", p)
	}
	if p2, err := ReadPlan(bytes.NewReader(raw)); err != nil || !p2.HasFidelity() {
		t.Fatalf("ReadPlan on v3 bytes: %v", err)
	}

	// Fidelity-free plans — including an all-zero explicit vector — must
	// stay on the v2 wire format byte for byte.
	flat := &policy.Plan{Name: "flat", Splits: []uint8{0, 1, 2}, Fidelity: []uint8{0, 0, 0}}
	buf.Reset()
	if err := WritePlanVersioned(&buf, flat, meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(planMagicV2)) {
		t.Fatalf("fidelity-free plan serialized with magic %q", buf.Bytes()[:8])
	}
}

// The legacy v1 writer cannot express fidelity; it promotes to v3 rather
// than silently flattening the plan.
func TestWritePlanPromotesFidelity(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePlan(&buf, goldenFidelityPlan); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(planMagicV3)) {
		t.Fatalf("WritePlan emitted magic %q for a fidelity plan", buf.Bytes()[:8])
	}
	p, meta, err := ReadPlanVersioned(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta != (PlanMeta{}) {
		t.Fatalf("promoted plan carries meta %+v, want zero", meta)
	}
	if !bytes.Equal(p.Fidelity, goldenFidelityPlan.Fidelity) {
		t.Fatalf("fidelity %v", p.Fidelity)
	}
}

// TestPlanV3Golden pins the v3 generation byte for byte, like the v1/v2
// goldens.
func TestPlanV3Golden(t *testing.T) {
	v3, err := os.ReadFile(filepath.Join("testdata", "plan_v3.golden"))
	if err != nil {
		t.Fatal(err)
	}
	wantMeta := PlanMeta{Version: 11, EnvFingerprint: 0x0badc0de05060708}
	p, meta, err := ReadPlanVersioned(bytes.NewReader(v3))
	if err != nil {
		t.Fatal(err)
	}
	if meta != wantMeta {
		t.Fatalf("v3 golden meta %+v, want %+v", meta, wantMeta)
	}
	if p.Name != goldenFidelityPlan.Name || !bytes.Equal(p.Fidelity, goldenFidelityPlan.Fidelity) {
		t.Fatalf("v3 golden plan %+v", p)
	}
	var out bytes.Buffer
	if err := WritePlanVersioned(&out, p, meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), v3) {
		t.Fatal("v3 writer no longer reproduces the golden bytes")
	}
}

func TestPlanV3Corrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePlanVersioned(&buf, goldenFidelityPlan, PlanMeta{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Truncated fidelity vector.
	if _, _, err := ReadPlanVersioned(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("accepted truncated fidelity vector")
	}
	// Out-of-range fidelity (>= imaging.MaxScans).
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] = 200
	if _, _, err := ReadPlanVersioned(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted out-of-range fidelity")
	}
	// Trailing garbage after the vector.
	if _, _, err := ReadPlanVersioned(bytes.NewReader(append(append([]byte(nil), raw...), 0))); err == nil {
		t.Fatal("accepted trailing data")
	}
	// A mis-sized in-memory fidelity vector must refuse to serialize.
	broken := &policy.Plan{Name: "b", Splits: []uint8{0, 0, 0}, Fidelity: []uint8{1}}
	if err := WritePlanVersioned(&buf, broken, PlanMeta{}); err == nil {
		t.Fatal("accepted mis-sized fidelity vector")
	}
}
