package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

var testProfile = Profile{
	DelayEvery:   4 << 10,
	Delay:        time.Millisecond,
	StallEvery:   32 << 10,
	Stall:        5 * time.Millisecond,
	CorruptEvery: 16 << 10,
	CloseAfter:   64 << 10,
}

// TestScheduleDeterminism: a schedule is a pure function of
// (seed, stream, conn) — the reproduce-from-seed contract.
func TestScheduleDeterminism(t *testing.T) {
	a := NewSource(42, 3, testProfile)
	b := NewSource(42, 3, testProfile)
	for conn := uint64(0); conn < 8; conn++ {
		sa, sb := a.ScheduleFor(conn), b.ScheduleFor(conn)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("conn %d: schedules diverged\n a %v\n b %v", conn, sa, sb)
		}
		if len(sa.Events) == 0 {
			t.Fatalf("conn %d: profile with every class enabled produced no events", conn)
		}
	}
	// Next() must walk the same pure function.
	if got, want := a.Next(), b.ScheduleFor(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("Next() != ScheduleFor(0)\n got %v\nwant %v", got, want)
	}
	// Different seeds and different streams must diverge.
	if s := NewSource(43, 3, testProfile).ScheduleFor(0); reflect.DeepEqual(s, a.ScheduleFor(0)) {
		t.Fatal("different seeds produced identical schedules")
	}
	if s := NewSource(42, 4, testProfile).ScheduleFor(0); reflect.DeepEqual(s, a.ScheduleFor(0)) {
		t.Fatal("different streams produced identical schedules")
	}
}

// TestScheduleShape: events are sorted by offset and nothing survives past a
// link-severing fault.
func TestScheduleShape(t *testing.T) {
	src := NewSource(7, 0, Profile{
		DelayEvery: 100, Delay: time.Millisecond,
		CloseAfter: 500,
		MaxEvents:  32,
	})
	for conn := uint64(0); conn < 16; conn++ {
		s := src.ScheduleFor(conn)
		for i := 1; i < len(s.Events); i++ {
			if s.Events[i].At < s.Events[i-1].At {
				t.Fatalf("conn %d: events out of order: %v", conn, s.Events)
			}
		}
		for i, e := range s.Events {
			if (e.Kind == KindClose || e.Kind == KindDrop) && i != len(s.Events)-1 {
				t.Fatalf("conn %d: events scheduled past a severed link: %v", conn, s.Events)
			}
		}
	}
	if s := NewSource(7, 0, Profile{}).ScheduleFor(0); len(s.Events) != 0 {
		t.Fatalf("zero profile produced events: %v", s.Events)
	}
}

// TestScheduleMixedClassesAllRepresented: a dense class must not starve a
// sparse one out of the schedule — every enabled class appears somewhere in
// the schedules of a small connection population, and the union cap holds.
func TestScheduleMixedClassesAllRepresented(t *testing.T) {
	src := NewSource(9, 0, Profile{
		DelayEvery:   50, // dense: alone it would fill MaxEvents many times over
		Delay:        time.Millisecond,
		CorruptEvery: 400,
		CloseAfter:   2000,
		MaxEvents:    32,
	})
	seen := map[Kind]bool{}
	for conn := uint64(0); conn < 8; conn++ {
		s := src.ScheduleFor(conn)
		if len(s.Events) > 32 {
			t.Fatalf("conn %d: %d events exceeds MaxEvents", conn, len(s.Events))
		}
		for _, e := range s.Events {
			seen[e.Kind] = true
		}
	}
	for _, k := range []Kind{KindDelay, KindCorrupt, KindClose} {
		if !seen[k] {
			t.Fatalf("class %v starved out of every schedule (saw %v)", k, seen)
		}
	}
}

// TestPlanDigest: the digest is stable for a seed and moves when the seed
// moves — the witness soak reports carry.
func TestPlanDigest(t *testing.T) {
	p1 := &Plan{Seed: 11, Shards: []Profile{testProfile, {}, testProfile}}
	p2 := &Plan{Seed: 11, Shards: []Profile{testProfile, {}, testProfile}}
	if p1.Digest(8) != p2.Digest(8) {
		t.Fatal("same plan, different digests")
	}
	p3 := &Plan{Seed: 12, Shards: []Profile{testProfile, {}, testProfile}}
	if p1.Digest(8) == p3.Digest(8) {
		t.Fatal("different seeds, same digest")
	}
	if (&Plan{Seed: 11}).Profile(5).Zero() != true {
		t.Fatal("out-of-range shard should have a zero profile")
	}
}

// pipePair returns both ends of an in-memory connection.
func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

// TestConnCorruptFlipsByte: a scripted corruption flips exactly one byte of
// the stream, and the wire checksum downstream refuses the frame.
func TestConnCorruptFlipsByte(t *testing.T) {
	client, server := pipePair()
	defer server.Close()
	// Corrupt the very first byte span: one event at offset 1.
	c := WrapConn(client, Schedule{Events: []Event{{At: 1, Kind: KindCorrupt}}}, nil, nil, nil)
	payload := []byte{1, 2, 3, 4}
	go func() {
		c.Write(payload)
		c.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4 ^ 0x80}
	if !bytes.Equal(got, want) {
		t.Fatalf("peer saw % x, want % x", got, want)
	}
	if payload[3] != 4 {
		t.Fatal("corruption mutated the caller's buffer")
	}
}

// TestConnCorruptionCaughtByChecksum: a frame written through a corrupting
// conn must surface as wire.ErrChecksum on the peer — the
// no-silent-corruption contract end to end.
func TestConnCorruptionCaughtByChecksum(t *testing.T) {
	client, server := pipePair()
	defer server.Close()
	c := WrapConn(client, Schedule{Events: []Event{{At: 10, Kind: KindCorrupt}}}, nil, nil, nil)
	go wire.Write(c, &wire.Fetch{RequestID: 1, Sample: 2, Split: 3, Epoch: 4})
	if _, err := wire.Read(server); !errors.Is(err, wire.ErrChecksum) {
		t.Fatalf("corrupted frame read err = %v, want wire.ErrChecksum", err)
	}
}

// TestConnCloseSeversLink: a Close event fails the write with the typed
// error and the peer sees EOF-like closure; later operations stay failed.
func TestConnCloseSeversLink(t *testing.T) {
	client, server := pipePair()
	defer server.Close()
	stats := &Stats{}
	c := WrapConn(client, Schedule{Events: []Event{{At: 8, Kind: KindClose}}}, nil, stats, nil)
	if n, err := c.Write(make([]byte, 16)); !errors.Is(err, ErrInjected) || n != 0 {
		t.Fatalf("write across close event: n=%d err=%v", n, err)
	}
	if _, err := c.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after severed link err = %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after severed link err = %v", err)
	}
	if got := stats.Snapshot().Closes; got != 1 {
		t.Fatalf("Closes = %d, want 1", got)
	}
}

// TestConnDropSwallowsWrite: the write reports success, the peer sees the
// link die, and nothing of the frame arrives.
func TestConnDropSwallowsWrite(t *testing.T) {
	client, server := pipePair()
	c := WrapConn(client, Schedule{Events: []Event{{At: 4, Kind: KindDrop}}}, nil, nil, nil)
	if n, err := c.Write(make([]byte, 8)); err != nil || n != 8 {
		t.Fatalf("dropped write: n=%d err=%v", n, err)
	}
	buf := make([]byte, 8)
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if n, err := server.Read(buf); err == nil {
		t.Fatalf("peer received %d bytes of a dropped write", n)
	}
}

// TestConnDelayCounts: pauses fire and are counted; traffic passes intact.
func TestConnDelayCounts(t *testing.T) {
	client, server := pipePair()
	defer server.Close()
	stats := &Stats{}
	c := WrapConn(client, Schedule{Events: []Event{
		{At: 1, Kind: KindDelay, Dur: time.Millisecond},
		{At: 2, Kind: KindStall, Dur: 2 * time.Millisecond},
	}}, nil, stats, nil)
	go func() {
		c.Write([]byte{1, 2, 3})
		c.Close()
	}()
	got, _ := io.ReadAll(server)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("peer saw % x", got)
	}
	snap := stats.Snapshot()
	if snap.Delays != 1 || snap.Stalls != 1 {
		t.Fatalf("stats = %+v, want one delay and one stall", snap)
	}
}

// TestListenerPartition: severing kills live connections and refuses new
// ones; healing restores service without restarting anything.
func TestListenerPartition(t *testing.T) {
	inner := netsim.NewPipeListener()
	defer inner.Close()
	l := WrapListener(inner, NewSource(1, 0, Profile{}), nil)

	// Echo server over the chaos listener.
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(conn, conn)
		}
	}()

	roundTrip := func(conn net.Conn) error {
		if _, err := conn.Write([]byte("ping")); err != nil {
			return err
		}
		buf := make([]byte, 4)
		_, err := io.ReadFull(conn, buf)
		return err
	}

	before, err := inner.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := roundTrip(before); err != nil {
		t.Fatalf("healthy round trip: %v", err)
	}

	l.Partition(true)
	if err := roundTrip(before); err == nil {
		t.Fatal("connection survived the partition")
	}
	during, err := inner.Dial()
	if err != nil {
		t.Fatal(err)
	}
	during.SetDeadline(time.Now().Add(2 * time.Second))
	if err := roundTrip(during); err == nil {
		t.Fatal("dial through a partition served traffic")
	}

	l.Partition(false)
	after, err := inner.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := roundTrip(after); err != nil {
		t.Fatalf("round trip after heal: %v", err)
	}
	after.Close()
}
