// Package chaos is a deterministic, seed-driven fault-injection subsystem
// for the storage fabric. It generalizes netsim.FlakyConn's single
// byte-budget fault into a composable fault plan: per-connection delay,
// stall, byte-drop, payload corruption, and abrupt close, plus per-shard
// partition and slow-shard profiles, all scheduled from a single seeded RNG
// so any failing run reproduces exactly from its seed.
//
// The determinism contract is layered:
//
//   - A Schedule is a pure function of (seed, stream, connection index): the
//     same seed always expands to the same per-connection event lists, byte
//     offset by byte offset. Digest pins this.
//   - Within a connection, events fire at fixed cumulative byte offsets, so
//     a given traffic pattern always hits the same faults.
//   - Across goroutines the *interleaving* of connections is still up to the
//     scheduler — so end-to-end suites assert interleaving-independent
//     invariants (bit-identical artifacts, exact failure accounting, no
//     goroutine leaks) rather than event-for-event transcripts.
package chaos

import (
	"fmt"
	"hash/crc32"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an injected fault.
type Kind uint8

// Fault classes. Delay and Stall pause an operation and let it proceed;
// Corrupt flips a byte so the wire checksum must catch it; Drop swallows a
// write and severs the link (on a reliable byte stream a vanished frame
// desyncs framing, so the honest model is a dead link); Close fails the
// operation outright and severs the link.
const (
	KindDelay Kind = iota + 1
	KindStall
	KindDrop
	KindCorrupt
	KindClose
)

// String names the fault class.
func (k Kind) String() string {
	switch k {
	case KindDelay:
		return "delay"
	case KindStall:
		return "stall"
	case KindDrop:
		return "drop"
	case KindCorrupt:
		return "corrupt"
	case KindClose:
		return "close"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault: it fires when the connection's cumulative
// traffic (reads plus writes) reaches At bytes.
type Event struct {
	At   int64
	Kind Kind
	Dur  time.Duration // pause length for Delay/Stall; ignored otherwise
}

// Schedule is a connection's fault script, sorted by byte offset. Events at
// or beyond a Drop/Close are unreachable (the link is dead) and are pruned
// at generation time.
type Schedule struct {
	Events []Event
}

// Profile describes a fault mix as mean byte gaps between events of each
// class. A zero field disables its class; the zero Profile injects nothing.
// Gaps are drawn uniformly from [1, 2·mean), so the configured value is the
// expected spacing while the exact offsets stay seed-determined.
type Profile struct {
	// DelayEvery is the mean bytes between short pauses of Delay each.
	DelayEvery int64
	Delay      time.Duration
	// StallEvery is the mean bytes between long pauses of Stall each — the
	// tail-latency fault class from the data-stall literature.
	StallEvery int64
	Stall      time.Duration
	// CorruptEvery is the mean bytes between single-byte payload flips.
	CorruptEvery int64
	// DropEvery is the mean bytes until a write is swallowed and the link
	// severed (at most one per connection — the link is gone afterwards).
	DropEvery int64
	// CloseAfter is the mean bytes until the link abruptly closes (at most
	// one per connection).
	CloseAfter int64
	// MaxEvents bounds the per-connection script (0 → 64).
	MaxEvents int
}

// Zero reports whether the profile injects no faults at all.
func (p Profile) Zero() bool {
	return p.DelayEvery == 0 && p.StallEvery == 0 && p.CorruptEvery == 0 &&
		p.DropEvery == 0 && p.CloseAfter == 0
}

// Stats counts injected faults by class, shared by every connection of a
// Source. Counters are atomic; read them with the Snapshot method.
type Stats struct {
	Delays   atomic.Int64
	Stalls   atomic.Int64
	Drops    atomic.Int64
	Corrupts atomic.Int64
	Closes   atomic.Int64
}

// StatsSnapshot is a point-in-time copy of a Stats.
type StatsSnapshot struct {
	Delays   int64 `json:"delays"`
	Stalls   int64 `json:"stalls"`
	Drops    int64 `json:"drops"`
	Corrupts int64 `json:"corrupts"`
	Closes   int64 `json:"closes"`
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Delays:   s.Delays.Load(),
		Stalls:   s.Stalls.Load(),
		Drops:    s.Drops.Load(),
		Corrupts: s.Corrupts.Load(),
		Closes:   s.Closes.Load(),
	}
}

// Total sums every class.
func (s StatsSnapshot) Total() int64 {
	return s.Delays + s.Stalls + s.Drops + s.Corrupts + s.Closes
}

// count bumps the counter for kind.
func (s *Stats) count(k Kind) {
	if s == nil {
		return
	}
	switch k {
	case KindDelay:
		s.Delays.Add(1)
	case KindStall:
		s.Stalls.Add(1)
	case KindDrop:
		s.Drops.Add(1)
	case KindCorrupt:
		s.Corrupts.Add(1)
	case KindClose:
		s.Closes.Add(1)
	}
}

// Source hands out per-connection schedules for one fault stream (typically
// one shard). Connection i's schedule is a pure function of (seed, stream,
// i), so a run reproduces exactly from its seed regardless of when the
// connections are dialed.
type Source struct {
	seed    uint64
	stream  uint64
	profile Profile
	stats   *Stats

	mu    sync.Mutex
	conns uint64
}

// NewSource builds a schedule source for the given seed and stream index.
func NewSource(seed, stream uint64, p Profile) *Source {
	return &Source{seed: seed, stream: stream, profile: p, stats: &Stats{}}
}

// Profile returns the source's fault mix.
func (s *Source) Profile() Profile { return s.profile }

// Stats returns the shared fault counters of every connection the source
// has scheduled.
func (s *Source) Stats() *Stats { return s.stats }

// Next returns the schedule for the next accepted connection, advancing the
// connection counter.
func (s *Source) Next() Schedule {
	s.mu.Lock()
	i := s.conns
	s.conns++
	s.mu.Unlock()
	return s.ScheduleFor(i)
}

// ScheduleFor expands connection conn's schedule without advancing the
// counter — the pure function behind Next, exposed so reproduction tooling
// can print the exact script a failing connection ran.
func (s *Source) ScheduleFor(conn uint64) Schedule {
	return expand(s.seed, s.stream, conn, s.profile)
}

// expand derives connection conn's event list from the seeded RNG. Events
// of each enabled class are laid out independently along the byte axis, the
// union is sorted, ties break by class order, and everything after the
// first link-severing event is pruned.
func expand(seed, stream, conn uint64, p Profile) Schedule {
	if p.Zero() {
		return Schedule{}
	}
	maxEvents := p.MaxEvents
	if maxEvents <= 0 {
		maxEvents = 64
	}
	rng := rand.New(rand.NewPCG(seed, stream<<32^conn))
	var events []Event
	gap := func(mean int64) int64 { return 1 + rng.Int64N(2*mean) }
	// Each class draws against its own budget so a dense class (frequent
	// delays) cannot starve a sparse one (an eventual close) out of the
	// schedule; the union is capped after the merge.
	class := func(mean int64, k Kind, d time.Duration, repeat bool) {
		if mean <= 0 {
			return
		}
		at := int64(0)
		for n := 0; n < maxEvents; n++ {
			at += gap(mean)
			events = append(events, Event{At: at, Kind: k, Dur: d})
			if !repeat {
				return
			}
		}
	}
	class(p.DelayEvery, KindDelay, p.Delay, true)
	class(p.StallEvery, KindStall, p.Stall, true)
	class(p.CorruptEvery, KindCorrupt, 0, true)
	class(p.DropEvery, KindDrop, 0, false)
	class(p.CloseAfter, KindClose, 0, false)
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Kind < events[j].Kind
	})
	for i, e := range events {
		if e.Kind == KindDrop || e.Kind == KindClose {
			events = events[:i+1]
			break
		}
	}
	// Cap the union; a sever scheduled past the cap does not fire.
	if len(events) > maxEvents {
		events = events[:maxEvents]
	}
	return Schedule{Events: events}
}

// Plan is a cluster-wide chaos plan: one fault profile per shard, all
// expanded from a single seed. Shards beyond the profile list run
// fault-free, so a plan can target one shard without naming the rest.
type Plan struct {
	Seed   uint64
	Shards []Profile
}

// Profile returns shard s's fault mix (zero when the plan doesn't cover s).
func (p *Plan) Profile(s int) Profile {
	if p == nil || s < 0 || s >= len(p.Shards) {
		return Profile{}
	}
	return p.Shards[s]
}

// Source builds shard s's schedule source.
func (p *Plan) Source(s int) *Source {
	return NewSource(p.Seed, uint64(s), p.Profile(s))
}

// Digest fingerprints the plan's expanded fault schedule — the first conns
// connections of every shard — as a CRC32-C. Two runs with the same seed
// produce the same digest; a drifted schedule generator changes it, so soak
// reports carry it as the reproducibility witness.
func (p *Plan) Digest(conns uint64) uint32 {
	if p == nil {
		return 0
	}
	tbl := crc32.MakeTable(crc32.Castagnoli)
	var buf [8]byte
	le := func(crc uint32, v uint64) uint32 {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		return crc32.Update(crc, tbl, buf[:])
	}
	crc := le(0, p.Seed)
	for s := range p.Shards {
		src := p.Source(s)
		for c := uint64(0); c < conns; c++ {
			for _, e := range src.ScheduleFor(c).Events {
				crc = le(crc, uint64(e.At))
				crc = le(crc, uint64(e.Kind))
				crc = le(crc, uint64(e.Dur))
			}
			crc = le(crc, ^uint64(0)) // connection separator
		}
	}
	return crc
}
