package chaos

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/simclock"
)

// ErrInjected marks every fault this package introduces; errors.Is(err,
// chaos.ErrInjected) distinguishes scripted chaos from organic failures in
// test assertions.
var ErrInjected = errors.New("chaos: injected fault")

// injectedErr ties a fired event to the typed sentinel.
func injectedErr(e Event) error {
	return fmt.Errorf("%w: %s at byte %d", ErrInjected, e.Kind, e.At)
}

// Conn wraps a net.Conn with a scripted fault schedule. Faults fire as the
// connection's cumulative traffic (reads plus writes) crosses each event's
// byte offset, so the same traffic pattern always hits the same faults:
//
//   - Delay/Stall pause the operation on the injected clock, then let it
//     proceed untouched.
//   - Corrupt flips one byte of the data in flight (the last byte of the
//     write, or of the bytes just read) — downstream the wire checksum must
//     turn this into a typed error, never a wrong decode.
//   - Drop swallows the write (reporting success) and severs the link: the
//     peer sees EOF, the writer learns on its next operation.
//   - Close severs the link and fails the operation immediately.
//
// Writers in this repository frame one message per Write call, so a
// corrupted write flips a payload (or checksum) byte, not the length field;
// corrupted reads may land anywhere in a frame, which the transport must
// also survive — by timeout and teardown at worst.
type Conn struct {
	net.Conn
	clock   simclock.Clock
	stats   *Stats
	onClose func(net.Conn)

	mu     sync.Mutex
	events []Event
	pos    int64
	dead   bool
}

// WrapConn applies a schedule to conn. A nil clock means real time; stats
// may be nil; onClose (may be nil) runs once when the wrapper closes the
// underlying connection, however that happens.
func WrapConn(conn net.Conn, sched Schedule, clock simclock.Clock, stats *Stats, onClose func(net.Conn)) *Conn {
	if clock == nil {
		clock = simclock.Real()
	}
	events := append([]Event(nil), sched.Events...)
	return &Conn{Conn: conn, clock: clock, stats: stats, onClose: onClose, events: events}
}

// advance charges n bytes of traffic and pops every event the charge
// crosses, in offset order.
func (c *Conn) advance(n int) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pos += int64(n)
	fired := 0
	for fired < len(c.events) && c.events[fired].At <= c.pos {
		fired++
	}
	out := c.events[:fired]
	c.events = c.events[fired:]
	return out
}

// kill severs the underlying connection once.
func (c *Conn) kill() {
	c.mu.Lock()
	dead := c.dead
	c.dead = true
	c.mu.Unlock()
	if !dead {
		c.Conn.Close()
		if c.onClose != nil {
			c.onClose(c.Conn)
		}
	}
}

// isDead reports whether a fault already severed the link.
func (c *Conn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// Write applies scheduled faults to the outgoing bytes, then forwards.
func (c *Conn) Write(p []byte) (int, error) {
	if c.isDead() {
		return 0, fmt.Errorf("%w: connection severed", ErrInjected)
	}
	payload := p
	for _, e := range c.advance(len(p)) {
		c.stats.count(e.Kind)
		switch e.Kind {
		case KindDelay, KindStall:
			c.clock.Sleep(e.Dur)
		case KindCorrupt:
			if len(payload) > 0 {
				// Copy before flipping: the caller's buffer is borrowed.
				corrupted := append([]byte(nil), payload...)
				corrupted[len(corrupted)-1] ^= 0x80
				payload = corrupted
			}
		case KindDrop:
			c.kill()
			return len(p), nil // the bytes vanish; the peer sees EOF
		case KindClose:
			c.kill()
			return 0, injectedErr(e)
		}
	}
	n, err := c.Conn.Write(payload)
	return n, err
}

// Read applies scheduled faults to the incoming bytes. Pauses and closes
// fire before the read; corruption flips the last byte actually read.
func (c *Conn) Read(p []byte) (int, error) {
	if c.isDead() {
		return 0, fmt.Errorf("%w: connection severed", ErrInjected)
	}
	n, err := c.Conn.Read(p)
	for _, e := range c.advance(n) {
		c.stats.count(e.Kind)
		switch e.Kind {
		case KindDelay, KindStall:
			c.clock.Sleep(e.Dur)
		case KindCorrupt:
			if n > 0 {
				p[n-1] ^= 0x80
			}
		case KindDrop, KindClose:
			c.kill()
			if err == nil {
				err = injectedErr(e)
			}
			return n, err
		}
	}
	return n, err
}

// Close forwards to the underlying connection (and deregisters from the
// listener when one is tracking this conn).
func (c *Conn) Close() error {
	c.kill()
	return nil
}
