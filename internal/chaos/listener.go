package chaos

import (
	"net"
	"sync"

	"repro/internal/simclock"
)

// Listener wraps an accept loop so every accepted connection runs under a
// fault schedule drawn from a Source, and the whole endpoint can be
// partitioned — reversibly severed from the network — at runtime. Partition
// differs from killing a server: the process stays healthy and already-
// accepted requests may still compute; only the network is gone, and
// healing it restores service without a restart.
type Listener struct {
	net.Listener
	src   *Source
	clock simclock.Clock

	mu          sync.Mutex
	partitioned bool
	conns       map[net.Conn]struct{}
}

// WrapListener applies src's schedules to every connection accepted from
// inner. A nil clock means real time.
func WrapListener(inner net.Listener, src *Source, clock simclock.Clock) *Listener {
	if clock == nil {
		clock = simclock.Real()
	}
	return &Listener{Listener: inner, src: src, clock: clock, conns: make(map[net.Conn]struct{})}
}

// Source returns the listener's schedule source (for fault counters).
func (l *Listener) Source() *Source { return l.src }

// Accept wraps the next connection with its scheduled faults. While
// partitioned, accepted connections are severed immediately — the dialing
// peer sees a link that dies before the handshake, exactly like a network
// partition around a live server.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	if l.partitioned {
		l.mu.Unlock()
		conn.Close()
		return conn, nil // already dead; the server's handshake read fails fast
	}
	wrapped := WrapConn(conn, l.src.Next(), l.clock, l.src.Stats(), l.forget)
	l.conns[wrapped.Conn] = struct{}{}
	l.mu.Unlock()
	return wrapped, nil
}

// forget drops a closed connection from the partition-kill set.
func (l *Listener) forget(conn net.Conn) {
	l.mu.Lock()
	delete(l.conns, conn)
	l.mu.Unlock()
}

// Partition severs (on=true) or heals (on=false) the endpoint. Severing
// closes every live connection and makes new ones die at accept; healing
// lets subsequent dials through untouched. Idempotent in both directions.
func (l *Listener) Partition(on bool) {
	l.mu.Lock()
	l.partitioned = on
	var victims []net.Conn
	if on {
		for c := range l.conns {
			victims = append(victims, c)
		}
		l.conns = make(map[net.Conn]struct{})
	}
	l.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// Partitioned reports the current partition state.
func (l *Listener) Partitioned() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.partitioned
}
