package profiler

import (
	"testing"
	"time"
)

func newTestTelemetry(t *testing.T, cfg DriftConfig) *Telemetry {
	t.Helper()
	tel, err := NewTelemetry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tel
}

func TestEWMA(t *testing.T) {
	if _, err := NewEWMA(0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := NewEWMA(1.5); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Ready() {
		t.Fatal("ready before first observation")
	}
	e.Observe(100) // first observation initializes, not decays from 0
	if e.Value() != 100 {
		t.Fatalf("after init: %v", e.Value())
	}
	e.Observe(50)
	if e.Value() != 75 {
		t.Fatalf("after 50: %v", e.Value())
	}
}

// TestDriftHysteresis drives the detector with per-epoch bandwidth
// measurements and checks exactly when (if ever) drift fires. Alpha 1
// removes smoothing so the table reasons about raw thresholds; the
// smoothing interaction is covered separately.
func TestDriftHysteresis(t *testing.T) {
	const base = 500e6 / 8 // 500 Mbps in bytes/sec
	cases := []struct {
		name       string
		cfg        DriftConfig
		bandwidth  []float64 // per-epoch measurements
		driftEpoch int       // 1-based epoch the first drift fires on; 0 = never
	}{
		{
			name:       "steady link never drifts",
			cfg:        DriftConfig{Alpha: 1},
			bandwidth:  []float64{base, base, base, base, base, base},
			driftEpoch: 0,
		},
		{
			name:       "sub-threshold noise never drifts",
			cfg:        DriftConfig{Alpha: 1, RelThreshold: 0.2},
			bandwidth:  []float64{base, 0.9 * base, 1.1 * base, 0.85 * base, 1.05 * base},
			driftEpoch: 0,
		},
		{
			name:       "single over-threshold blip is absorbed by hysteresis",
			cfg:        DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 2},
			bandwidth:  []float64{base, 0.5 * base, base, base, base},
			driftEpoch: 0,
		},
		{
			name:       "sustained halving drifts after hysteresis epochs",
			cfg:        DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 2},
			bandwidth:  []float64{base, 0.5 * base, 0.5 * base, 0.5 * base},
			driftEpoch: 3, // epochs 2 and 3 over threshold → streak reaches 2 at epoch 3
		},
		{
			name:       "hysteresis 1 fires on first over-threshold epoch",
			cfg:        DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 1},
			bandwidth:  []float64{base, 0.5 * base},
			driftEpoch: 2,
		},
		{
			name:       "streak resets when the link recovers",
			cfg:        DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 3},
			bandwidth:  []float64{base, 0.5 * base, 0.5 * base, base, 0.5 * base, 0.5 * base},
			driftEpoch: 0, // never three in a row
		},
		{
			name:      "smoothing delays detection of an abrupt halving",
			cfg:       DriftConfig{Alpha: 0.5, RelThreshold: 0.2, Hysteresis: 2},
			bandwidth: []float64{base, 0.5 * base, 0.5 * base, 0.5 * base},
			// EWMA after epoch 2: 0.75·base (25% off → streak 1); epoch 3:
			// 0.625·base (streak 2) → fires at epoch 3.
			driftEpoch: 3,
		},
		{
			name:       "upward drift detected symmetrically",
			cfg:        DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 2},
			bandwidth:  []float64{base, 2 * base, 2 * base},
			driftEpoch: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tel := newTestTelemetry(t, tc.cfg)
			tel.Rebase(base, 0, 0)
			fired := 0
			for i, bw := range tc.bandwidth {
				epoch := uint64(i + 1)
				drifts := tel.ObserveEpoch(EpochSample{Epoch: epoch, Bandwidth: bw})
				if len(drifts) > 0 && fired == 0 {
					fired = i + 1
					if drifts[0].Kind != DriftBandwidth {
						t.Fatalf("drift kind = %v", drifts[0].Kind)
					}
					if drifts[0].Immediate {
						t.Fatal("bandwidth drift marked immediate")
					}
				}
			}
			if fired != tc.driftEpoch {
				t.Fatalf("first drift at epoch %d, want %d", fired, tc.driftEpoch)
			}
		})
	}
}

// TestShardLossImmediate: shard topology changes bypass hysteresis entirely.
func TestShardLossImmediate(t *testing.T) {
	tel := newTestTelemetry(t, DriftConfig{Hysteresis: 5})
	// First observation establishes the shard baseline without drifting.
	if d := tel.ObserveEpoch(EpochSample{Epoch: 1, ShardsUp: 4, Shards: 4}); len(d) != 0 {
		t.Fatalf("baseline epoch drifted: %v", d)
	}
	d := tel.ObserveEpoch(EpochSample{Epoch: 2, ShardsUp: 3, Shards: 4})
	if len(d) != 1 || d[0].Kind != DriftShard || !d[0].Immediate {
		t.Fatalf("shard loss not immediate: %v", d)
	}
	if d[0].Baseline != 4 || d[0].Current != 3 {
		t.Fatalf("shard drift %v", d[0])
	}
	// Recovery is a topology change too — the plan should widen back.
	d = tel.ObserveEpoch(EpochSample{Epoch: 3, ShardsUp: 4, Shards: 4})
	if len(d) != 1 || !d[0].Immediate {
		t.Fatalf("shard recovery not flagged: %v", d)
	}
}

// TestObserveShardChangeMidEpoch covers the out-of-band path a degradation
// event takes (not waiting for an epoch boundary).
func TestObserveShardChangeMidEpoch(t *testing.T) {
	tel := newTestTelemetry(t, DriftConfig{})
	// First report seeds the baseline.
	if d := tel.ObserveShardChange(1, 4, 4); d != nil {
		t.Fatalf("baseline report drifted: %v", d)
	}
	if d := tel.ObserveShardChange(1, 4, 4); d != nil {
		t.Fatalf("no-change report drifted: %v", d)
	}
	d := tel.ObserveShardChange(2, 2, 4)
	if d == nil || !d.Immediate || d.Kind != DriftShard {
		t.Fatalf("mid-epoch loss: %v", d)
	}
}

// TestRebaseClearsStreaks: replanning resets detection against the new
// environment, so the same degraded-but-replanned-for link stops drifting.
func TestRebaseClearsStreaks(t *testing.T) {
	const base = 500e6 / 8
	tel := newTestTelemetry(t, DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 2})
	tel.Rebase(base, 0, 0)
	tel.ObserveEpoch(EpochSample{Epoch: 1, Bandwidth: 0.5 * base})
	d := tel.ObserveEpoch(EpochSample{Epoch: 2, Bandwidth: 0.5 * base})
	if len(d) != 1 {
		t.Fatalf("halving undetected: %v", d)
	}
	// Controller replans for the degraded link and rebases.
	tel.Rebase(0.5*base, 0, 0)
	for e := uint64(3); e <= 6; e++ {
		if d := tel.ObserveEpoch(EpochSample{Epoch: e, Bandwidth: 0.5 * base}); len(d) != 0 {
			t.Fatalf("epoch %d drifted after rebase: %v", e, d)
		}
	}
}

// TestTelemetrySnapshot: the gauge view reflects the stream.
func TestTelemetrySnapshot(t *testing.T) {
	tel := newTestTelemetry(t, DriftConfig{Alpha: 1})
	tel.Rebase(100, 0.5, 10*time.Millisecond)
	tel.ObserveEpoch(EpochSample{
		Epoch: 1, Bandwidth: 90, StorageOccupancy: 0.6,
		OpTime: 12 * time.Millisecond, ShardsUp: 2, Shards: 2,
	})
	s := tel.Snapshot()
	if s.Epochs != 1 || s.Bandwidth != 90 || s.BandwidthBaseline != 100 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.StorageOccupancy != 0.6 || s.OpTimeSeconds != 0.012 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.ShardsUp != 2 || s.Shards != 2 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestDriftConfigValidation(t *testing.T) {
	if _, err := NewTelemetry(DriftConfig{Alpha: -1}); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := NewTelemetry(DriftConfig{RelThreshold: -0.1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := NewTelemetry(DriftConfig{Hysteresis: -2}); err == nil {
		t.Fatal("negative hysteresis accepted")
	}
	cfg, err := DriftConfig{}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Alpha != DefaultDriftAlpha || cfg.RelThreshold != DefaultDriftRelThreshold || cfg.Hysteresis != DefaultDriftHysteresis {
		t.Fatalf("defaults %+v", cfg)
	}
}
