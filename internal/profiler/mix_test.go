package profiler

import (
	"testing"
)

func mixTelemetry(t *testing.T, cfg DriftConfig) *Telemetry {
	t.Helper()
	tel, err := NewTelemetry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tel
}

func TestMixThresholdNormalization(t *testing.T) {
	cfg, err := DriftConfig{}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MixThreshold != DefaultDriftMixThreshold {
		t.Fatalf("default mix threshold %v", cfg.MixThreshold)
	}
	if _, err := (DriftConfig{MixThreshold: -0.1}).Normalized(); err == nil {
		t.Fatal("negative mix threshold accepted")
	}
	if _, err := (DriftConfig{MixThreshold: 1.5}).Normalized(); err == nil {
		t.Fatal("mix threshold > 1 accepted")
	}
}

// TestMixDriftFromZeroBaseline: the reason the mix test is absolute — a plan
// built on an all-light profile (baseline 0) must still detect a skew flip.
// A relative threshold against 0 could never fire.
func TestMixDriftFromZeroBaseline(t *testing.T) {
	tel := mixTelemetry(t, DriftConfig{Alpha: 1, MixThreshold: 0.2, Hysteresis: 2})
	tel.RebaseMix(0)

	// Epoch 1: heavy mix appears; over threshold but under hysteresis.
	if drifts := tel.ObserveEpoch(EpochSample{Epoch: 1, MixHeavy: 60, MixTotal: 100}); len(drifts) != 0 {
		t.Fatalf("drift on first over-threshold epoch: %v", drifts)
	}
	// Epoch 2: sustained — the mix drift fires.
	drifts := tel.ObserveEpoch(EpochSample{Epoch: 2, MixHeavy: 60, MixTotal: 100})
	if len(drifts) != 1 || drifts[0].Kind != DriftMix {
		t.Fatalf("drifts = %v, want one mix-drift", drifts)
	}
	if drifts[0].Baseline != 0 || drifts[0].Current != 0.6 {
		t.Fatalf("mix drift %v, want 0→0.6", drifts[0])
	}
	if got := drifts[0].Kind.String(); got != "mix-drift" {
		t.Fatalf("kind string %q", got)
	}
}

func TestMixStreakResetsUnderThreshold(t *testing.T) {
	tel := mixTelemetry(t, DriftConfig{Alpha: 1, MixThreshold: 0.2, Hysteresis: 2})
	tel.RebaseMix(0.1)
	tel.ObserveEpoch(EpochSample{Epoch: 1, MixHeavy: 50, MixTotal: 100}) // streak 1
	tel.ObserveEpoch(EpochSample{Epoch: 2, MixHeavy: 10, MixTotal: 100}) // back in band
	if s := tel.Snapshot(); s.MixStreak != 0 {
		t.Fatalf("streak %d after in-band epoch", s.MixStreak)
	}
	// And a later excursion has to re-earn the hysteresis.
	if drifts := tel.ObserveEpoch(EpochSample{Epoch: 3, MixHeavy: 50, MixTotal: 100}); len(drifts) != 0 {
		t.Fatalf("drift without sustained streak: %v", drifts)
	}
}

// TestAdoptMixBaseline: after a replan adopts the shifted mix, the same skew
// no longer counts as drift — no replan storm under a persistent flip.
func TestAdoptMixBaseline(t *testing.T) {
	tel := mixTelemetry(t, DriftConfig{Alpha: 1, MixThreshold: 0.2, Hysteresis: 1})
	tel.RebaseMix(0)
	drifts := tel.ObserveEpoch(EpochSample{Epoch: 1, MixHeavy: 70, MixTotal: 100})
	if len(drifts) != 1 {
		t.Fatalf("drifts = %v, want the flip detected", drifts)
	}
	tel.AdoptMixBaseline()
	if s := tel.Snapshot(); s.MixBaseline != 0.7 || s.MixStreak != 0 {
		t.Fatalf("adopted baseline %v streak %d", s.MixBaseline, s.MixStreak)
	}
	if drifts := tel.ObserveEpoch(EpochSample{Epoch: 2, MixHeavy: 70, MixTotal: 100}); len(drifts) != 0 {
		t.Fatalf("persistent flip re-triggered after adoption: %v", drifts)
	}
}

func TestMixObservationGuards(t *testing.T) {
	tel := mixTelemetry(t, DriftConfig{Alpha: 1, MixThreshold: 0.1, Hysteresis: 1})
	tel.RebaseMix(0)
	// Unmeasured or malformed mixes leave the track untouched.
	tel.ObserveEpoch(EpochSample{Epoch: 1})
	tel.ObserveEpoch(EpochSample{Epoch: 2, MixHeavy: 5, MixTotal: 0})
	tel.ObserveEpoch(EpochSample{Epoch: 3, MixHeavy: 9, MixTotal: 4})
	tel.ObserveEpoch(EpochSample{Epoch: 4, MixHeavy: -1, MixTotal: 4})
	if s := tel.Snapshot(); s.MixHeavyFrac != 0 || s.MixStreak != 0 {
		t.Fatalf("malformed mixes moved the track: %+v", s)
	}
	// AdoptMixBaseline before any observation is a no-op on the baseline.
	tel2 := mixTelemetry(t, DriftConfig{})
	tel2.RebaseMix(0.3)
	tel2.AdoptMixBaseline()
	if s := tel2.Snapshot(); s.MixBaseline != 0.3 {
		t.Fatalf("unready adoption overwrote baseline: %v", s.MixBaseline)
	}
	// Negative rebase values are ignored; the streak still clears.
	tel2.RebaseMix(-1)
	if s := tel2.Snapshot(); s.MixBaseline != 0.3 {
		t.Fatalf("negative rebase overwrote baseline: %v", s.MixBaseline)
	}
	// Rebase (plan publish) clears the mix streak as well.
	tel3 := mixTelemetry(t, DriftConfig{Alpha: 1, MixThreshold: 0.1, Hysteresis: 3})
	tel3.RebaseMix(0)
	tel3.ObserveEpoch(EpochSample{Epoch: 1, MixHeavy: 50, MixTotal: 100})
	tel3.Rebase(0, 0, 0)
	if s := tel3.Snapshot(); s.MixStreak != 0 {
		t.Fatalf("Rebase left mix streak %d", s.MixStreak)
	}
}
