package profiler

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/policy"

	"repro/internal/imaging"
)

func paperEnv() policy.Env {
	return policy.Env{
		Bandwidth:       netsim.Mbps(500),
		ComputeCores:    48,
		StorageCores:    48,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
}

func TestBottleneckClassification(t *testing.T) {
	cases := []struct {
		r    Stage1Result
		want Bottleneck
	}{
		{Stage1Result{GPUThroughput: 3000, IOThroughput: 200, CPUThroughput: 900}, IOBound},
		{Stage1Result{GPUThroughput: 3000, IOThroughput: 900, CPUThroughput: 200}, CPUBound},
		{Stage1Result{GPUThroughput: 100, IOThroughput: 900, CPUThroughput: 800}, GPUBound},
		{Stage1Result{GPUThroughput: 200, IOThroughput: 200, CPUThroughput: 900}, IOBound}, // tie → IO
	}
	for i, c := range cases {
		if got := c.r.Bottleneck(); got != c.want {
			t.Errorf("case %d: bottleneck = %s, want %s", i, got, c.want)
		}
	}
	if !(Stage1Result{GPUThroughput: 2, IOThroughput: 1, CPUThroughput: 3}).IOBound() {
		t.Fatal("IOBound() false for io-limited probes")
	}
	for b, want := range map[Bottleneck]string{IOBound: "io-bound", CPUBound: "cpu-bound", GPUBound: "gpu-bound", Bottleneck(9): "bottleneck(9)"} {
		if b.String() != want {
			t.Errorf("%d.String() = %q", b, b.String())
		}
	}
}

func TestRunStage1(t *testing.T) {
	mk := func(rate float64) Probe {
		return func(batches int) (int, time.Duration, error) {
			n := batches * 32
			return n, time.Duration(float64(n) / rate * float64(time.Second)), nil
		}
	}
	res, err := RunStage1(Probes{GPU: mk(3000), IO: mk(200), CPU: mk(1000)}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bottleneck() != IOBound {
		t.Fatalf("bottleneck = %s", res.Bottleneck())
	}
	approx := func(got, want float64) bool { return got > want*0.99 && got < want*1.01 }
	if !approx(res.GPUThroughput, 3000) || !approx(res.IOThroughput, 200) || !approx(res.CPUThroughput, 1000) {
		t.Fatalf("throughputs: %+v", res)
	}
}

func TestRunStage1Errors(t *testing.T) {
	ok := func(batches int) (int, time.Duration, error) { return 10, time.Second, nil }
	bad := func(batches int) (int, time.Duration, error) { return 0, 0, nil }
	failing := func(batches int) (int, time.Duration, error) { return 0, 0, errors.New("boom") }

	if _, err := RunStage1(Probes{GPU: ok, IO: ok}, 10); err == nil {
		t.Fatal("accepted missing probe")
	}
	if _, err := RunStage1(Probes{GPU: ok, IO: bad, CPU: ok}, 10); err == nil {
		t.Fatal("accepted zero-sample probe")
	}
	if _, err := RunStage1(Probes{GPU: ok, IO: ok, CPU: failing}, 10); err == nil {
		t.Fatal("accepted failing probe")
	}
}

func TestStage1FromTracePaperSetupIsIOBound(t *testing.T) {
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(2000), 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Stage1FromTrace(tr, paperEnv())
	if err != nil {
		t.Fatal(err)
	}
	if !res.IOBound() {
		t.Fatalf("paper setup not I/O bound: %+v", res)
	}
	// ~62.5 MB/s over ~300 KB samples ≈ 208 samples/s.
	if res.IOThroughput < 150 || res.IOThroughput > 280 {
		t.Fatalf("IO throughput %v, want ≈208", res.IOThroughput)
	}
}

func TestStage1FromTraceBottleneckShifts(t *testing.T) {
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(1000), 3)
	if err != nil {
		t.Fatal(err)
	}
	cpuBound := paperEnv()
	cpuBound.ComputeCores = 1
	cpuBound.Bandwidth = netsim.Mbps(50000)
	res, err := Stage1FromTrace(tr, cpuBound)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bottleneck() != CPUBound {
		t.Fatalf("1-core fat-link setup: %s", res.Bottleneck())
	}

	gpuBound := paperEnv()
	gpuBound.Bandwidth = netsim.Mbps(50000)
	gpuBound.GPU = gpu.ResNet50
	res, err = Stage1FromTrace(tr, gpuBound)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bottleneck() != GPUBound {
		t.Fatalf("ResNet50 fat-link setup: %s", res.Bottleneck())
	}
}

func TestStage1FromTraceValidates(t *testing.T) {
	if _, err := Stage1FromTrace(&dataset.Trace{}, paperEnv()); err == nil {
		t.Fatal("accepted empty trace")
	}
	tr, _ := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(10), 1)
	bad := paperEnv()
	bad.Bandwidth = 0
	if _, err := Stage1FromTrace(tr, bad); err == nil {
		t.Fatal("accepted bad env")
	}
}

func TestCollectorLifecycle(t *testing.T) {
	if _, err := NewCollector(0); err == nil {
		t.Fatal("accepted n=0")
	}
	c, err := NewCollector(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Complete() {
		t.Fatal("empty collector claims completeness")
	}
	if _, err := c.Trace("x"); err == nil {
		t.Fatal("incomplete collector produced a trace")
	}

	p := pipeline.DefaultStandard()
	for id := uint32(0); id < 3; id++ {
		im, err := imaging.Synthesize(imaging.SynthParams{W: 60 + int(id)*10, H: 50, Detail: 0.4, Seed: uint64(id)})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := imaging.EncodeDefault(im)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := p.Trace(raw, pipeline.Seed{Job: 1, Epoch: 1, Sample: uint64(id)})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Observe(id, st, im.W, im.H); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Complete() {
		t.Fatal("collector incomplete after observing all")
	}
	tr, err := c.Trace("measured")
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 3 || tr.Name != "measured" {
		t.Fatalf("trace: %d samples, %q", tr.N(), tr.Name)
	}
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.StageSizes[2] != int64(pipeline.ImageWireSize(224, 224)) {
			t.Fatalf("record %d stage2 size %d", i, r.StageSizes[2])
		}
		if r.Width != 60+i*10 {
			t.Fatalf("record %d width %d", i, r.Width)
		}
		if r.RawSize != r.StageSizes[0]-1 {
			t.Fatalf("record %d raw size inconsistent", i)
		}
	}
}

func TestCollectorRejectsBadObservations(t *testing.T) {
	c, _ := NewCollector(2)
	if err := c.Observe(0, pipeline.StageTrace{}, 1, 1); err == nil {
		t.Fatal("accepted empty stage trace")
	}
	good := pipeline.StageTrace{
		Sizes:   make([]int, dataset.StageCount),
		OpTimes: make([]time.Duration, dataset.OpCount),
	}
	if err := c.Observe(5, good, 1, 1); err == nil {
		t.Fatal("accepted out-of-range id")
	}
	if err := c.Observe(0, good, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Re-observation overwrites without double-counting.
	if err := c.Observe(0, good, 2, 2); err != nil {
		t.Fatal(err)
	}
	observed, total := c.Progress()
	if observed != 1 || total != 2 {
		t.Fatalf("progress %d/%d", observed, total)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	const n = 64
	c, _ := NewCollector(n)
	st := pipeline.StageTrace{
		Sizes:   make([]int, dataset.StageCount),
		OpTimes: make([]time.Duration, dataset.OpCount),
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := w; id < n; id += 8 {
				if err := c.Observe(uint32(id), st, 10, 10); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if !c.Complete() {
		observed, total := c.Progress()
		t.Fatalf("progress %d/%d after concurrent observes", observed, total)
	}
}

// TestCollectedTraceDrivesEngine: a trace measured from real images feeds
// the decision engine end to end.
func TestCollectedTraceDrivesEngine(t *testing.T) {
	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: "mini", N: 12, Seed: 8, MinDim: 100, MaxDim: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewCollector(set.N())
	p := pipeline.DefaultStandard()
	for i := 0; i < set.N(); i++ {
		raw, err := set.Raw(i)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := set.Meta(i)
		_, st, err := p.Trace(raw, pipeline.Seed{Job: 1, Epoch: 1, Sample: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Observe(uint32(i), st, m.W, m.H); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := c.Trace(set.Name())
	if err != nil {
		t.Fatal(err)
	}
	env := paperEnv()
	env.Bandwidth = netsim.Mbps(5) // tiny link so the mini set is I/O bound
	plan, err := policy.NewSophon().Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	traffic, err := plan.Traffic(tr)
	if err != nil {
		t.Fatal(err)
	}
	if traffic > tr.TotalRawBytes() {
		t.Fatalf("SOPHON plan increased traffic: %d > %d", traffic, tr.TotalRawBytes())
	}
}
