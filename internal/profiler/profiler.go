// Package profiler implements SOPHON's two-stage profiler. Stage 1 probes
// GPU, I/O, and CPU throughput over a handful of batches (the paper uses 50)
// to decide whether the workload is I/O-bound at all — offloading only
// activates when it is. Stage 2 collects per-sample metrics (artifact size
// after every op, per-op CPU time) on the fly during the first training
// epoch, so profiling adds no extra pass over the dataset.
package profiler

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/policy"
)

// DefaultProbeBatches is the number of batches stage 1 measures per
// setting.
const DefaultProbeBatches = 50

// Bottleneck classifies the workload's limiting resource.
type Bottleneck int

// Bottleneck kinds.
const (
	IOBound Bottleneck = iota
	CPUBound
	GPUBound
)

// String names the bottleneck.
func (b Bottleneck) String() string {
	switch b {
	case IOBound:
		return "io-bound"
	case CPUBound:
		return "cpu-bound"
	case GPUBound:
		return "gpu-bound"
	default:
		return fmt.Sprintf("bottleneck(%d)", int(b))
	}
}

// Stage1Result holds the three throughput probes in samples/second.
type Stage1Result struct {
	GPUThroughput float64
	IOThroughput  float64
	CPUThroughput float64
}

// Bottleneck returns the resource with the lowest probed throughput (ties
// resolve in order I/O, CPU, GPU — matching the paper's bias toward
// treating the link as the constraint).
func (r Stage1Result) Bottleneck() Bottleneck {
	min := r.IOThroughput
	b := IOBound
	if r.CPUThroughput < min {
		min = r.CPUThroughput
		b = CPUBound
	}
	if r.GPUThroughput < min {
		b = GPUBound
	}
	return b
}

// IOBound reports whether stage 1 gates offloading on.
func (r Stage1Result) IOBound() bool { return r.Bottleneck() == IOBound }

// Probe measures one setting: it processes the requested number of batches
// and returns how many samples were handled and how long it took.
type Probe func(batches int) (samples int, elapsed time.Duration, err error)

// Probes bundles the three stage-1 measurements: (1) GPU-only training on
// synthetic data, (2) raw data retrieval with no processing, (3) CPU
// preprocessing over cached data.
type Probes struct {
	GPU Probe
	IO  Probe
	CPU Probe
}

// RunStage1 executes the three probes.
func RunStage1(p Probes, batches int) (Stage1Result, error) {
	if batches <= 0 {
		batches = DefaultProbeBatches
	}
	if p.GPU == nil || p.IO == nil || p.CPU == nil {
		return Stage1Result{}, errors.New("profiler: all three probes are required")
	}
	var out Stage1Result
	for _, probe := range []struct {
		name string
		f    Probe
		dst  *float64
	}{
		{"gpu", p.GPU, &out.GPUThroughput},
		{"io", p.IO, &out.IOThroughput},
		{"cpu", p.CPU, &out.CPUThroughput},
	} {
		n, elapsed, err := probe.f(batches)
		if err != nil {
			return Stage1Result{}, fmt.Errorf("profiler: %s probe: %w", probe.name, err)
		}
		if n <= 0 || elapsed <= 0 {
			return Stage1Result{}, fmt.Errorf("profiler: %s probe returned %d samples in %v", probe.name, n, elapsed)
		}
		*probe.dst = float64(n) / elapsed.Seconds()
	}
	return out, nil
}

// Stage1FromTrace evaluates the three probes analytically from a profiled
// trace and environment — the model-tier equivalent of the live probes (the
// same quantities a 50-batch measurement converges to).
func Stage1FromTrace(tr *dataset.Trace, env policy.Env) (Stage1Result, error) {
	if err := env.Validate(); err != nil {
		return Stage1Result{}, err
	}
	if tr.N() == 0 {
		return Stage1Result{}, errors.New("profiler: empty trace")
	}
	n := float64(tr.N())
	meanBytes := float64(tr.TotalRawBytes()) / n
	meanCPU := tr.TotalPreprocessCPU().Seconds() / n
	return Stage1Result{
		GPUThroughput: env.GPU.Throughput * float64(env.GPUs()),
		IOThroughput:  env.Bandwidth / meanBytes,
		CPUThroughput: float64(env.ComputeCores) / meanCPU,
	}, nil
}

// Collector accumulates stage-2 per-sample observations during epoch 1.
// It is safe for concurrent use by loader workers.
type Collector struct {
	mu      sync.Mutex
	records []dataset.Record
	seen    []bool
	count   int
}

// NewCollector sizes the collector for a dataset of n samples.
func NewCollector(n int) (*Collector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("profiler: collector needs n > 0, got %d", n)
	}
	return &Collector{records: make([]dataset.Record, n), seen: make([]bool, n)}, nil
}

// Observe records one sample's stage trace. Re-observations overwrite (the
// last epoch-1 measurement wins). Width/height are the decoded dimensions.
func (c *Collector) Observe(id uint32, st pipeline.StageTrace, width, height int) error {
	if len(st.Sizes) != dataset.StageCount || len(st.OpTimes) != dataset.OpCount {
		return fmt.Errorf("profiler: stage trace has %d sizes / %d times", len(st.Sizes), len(st.OpTimes))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(id) >= len(c.records) {
		return fmt.Errorf("profiler: sample %d out of range [0, %d)", id, len(c.records))
	}
	rec := dataset.Record{
		ID:      id,
		RawSize: int64(st.Sizes[0] - 1), // strip the artifact kind byte
		Width:   width,
		Height:  height,
	}
	for i, s := range st.Sizes {
		rec.StageSizes[i] = int64(s)
	}
	for i, d := range st.OpTimes {
		rec.OpTimes[i] = d
	}
	if !c.seen[id] {
		c.seen[id] = true
		c.count++
	}
	c.records[id] = rec
	return nil
}

// Progress returns how many distinct samples have been observed.
func (c *Collector) Progress() (observed, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count, len(c.records)
}

// Complete reports whether every sample has been observed.
func (c *Collector) Complete() bool {
	observed, total := c.Progress()
	return observed == total
}

// Trace materializes the collected records as a dataset trace. It fails if
// any sample was never observed.
func (c *Collector) Trace(name string) (*dataset.Trace, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.count != len(c.records) {
		return nil, fmt.Errorf("profiler: only %d of %d samples observed", c.count, len(c.records))
	}
	records := make([]dataset.Record, len(c.records))
	copy(records, c.records)
	return &dataset.Trace{Name: name, Records: records}, nil
}
