package profiler

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Streaming telemetry: SOPHON's stage-2 profiler measures the environment
// once, during epoch 1, and the plan is frozen against that snapshot. The
// Telemetry type extends stage 2 into a per-epoch stream — every epoch
// contributes a measurement of link bandwidth, storage-CPU occupancy,
// per-sample op time, and shard health, smoothed by EWMAs — and flags drift
// against the environment the current plan was computed for. Relative-change
// thresholds with hysteresis keep measurement noise from thrashing the plan;
// shard topology changes bypass hysteresis because a lost shard invalidates
// placement immediately, not after it has been dead for N epochs.
//
// Telemetry is epoch-indexed, never wall-clock-driven: all its state
// advances only through ObserveEpoch, so the adaptive controller is
// deterministic under the virtual clock.

// EWMA is an exponentially weighted moving average. The zero value is
// unusable; construct with NewEWMA. The first observation initializes the
// average rather than decaying from zero.
type EWMA struct {
	alpha float64
	value float64
	ready bool
}

// NewEWMA builds an average with smoothing factor alpha in (0, 1]: higher
// alpha tracks changes faster, lower alpha smooths harder.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("profiler: EWMA alpha %v outside (0, 1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe folds one measurement into the average.
func (e *EWMA) Observe(v float64) {
	if !e.ready {
		e.value, e.ready = v, true
		return
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Ready reports whether at least one observation has been folded in.
func (e *EWMA) Ready() bool { return e.ready }

// EpochSample is one epoch's measured environment, produced by whichever
// layer ran the epoch (the live trainer from EpochReport accounting, the DES
// from its Result). Zero-valued metrics mean "not measured this epoch" and
// leave the corresponding EWMA untouched.
type EpochSample struct {
	Epoch uint64
	// Bandwidth is the measured link throughput in bytes/second.
	Bandwidth float64
	// StorageOccupancy is the storage-tier CPU occupancy fraction:
	// storage-CPU-seconds consumed per wall-second, normalized by the core
	// budget, so 1.0 means the offload budget is saturated.
	StorageOccupancy float64
	// OpTime is the mean per-sample preprocessing CPU time.
	OpTime time.Duration
	// ShardsUp counts reachable shards out of Shards; Shards 0 means shard
	// health was not measured this epoch.
	ShardsUp, Shards int
	// MixHeavy / MixTotal is the epoch's observed heavy/light preprocessing
	// mix (the variance-aware scheduler's class counts — EpochReport.Heavy
	// over Samples). MixTotal 0 means the mix was not measured this epoch.
	// Unlike the other metrics, a measured heavy fraction of zero is a valid
	// observation: an all-light epoch is exactly how a skew flip ends.
	MixHeavy, MixTotal int
}

// DriftKind classifies what moved away from the plan's environment.
type DriftKind int

// Drift kinds.
const (
	DriftBandwidth DriftKind = iota
	DriftStorageCPU
	DriftOpTime
	DriftShard
	DriftMix
)

// String names the drift kind; the controller uses it in replan reasons.
func (k DriftKind) String() string {
	switch k {
	case DriftBandwidth:
		return "bandwidth-drift"
	case DriftStorageCPU:
		return "storage-cpu-drift"
	case DriftOpTime:
		return "op-time-drift"
	case DriftShard:
		return "shard-change"
	case DriftMix:
		return "mix-drift"
	default:
		return fmt.Sprintf("drift(%d)", int(k))
	}
}

// Drift is one detected deviation between the smoothed measurements and the
// baseline the current plan was computed against.
type Drift struct {
	Kind  DriftKind
	Epoch uint64
	// Baseline and Current are the metric's plan-time and smoothed live
	// values (for DriftShard: shard counts).
	Baseline float64
	Current  float64
	// Immediate drifts (shard topology changes) warrant replanning without
	// waiting for the next epoch boundary.
	Immediate bool
}

// String renders the drift for logs and replan histories.
func (d Drift) String() string {
	return fmt.Sprintf("%s@epoch%d(%.3g→%.3g)", d.Kind, d.Epoch, d.Baseline, d.Current)
}

// DriftConfig tunes detection. The zero value resolves to defaults.
type DriftConfig struct {
	// Alpha is the EWMA smoothing factor (0 → 0.5).
	Alpha float64
	// RelThreshold is the relative change versus baseline that counts as
	// drift, e.g. 0.2 = 20% (0 → 0.2).
	RelThreshold float64
	// Hysteresis is how many consecutive over-threshold epochs a metric
	// must sustain before drift is signaled (0 → 2, 1 = signal on the
	// first over-threshold epoch). Shard changes ignore hysteresis.
	Hysteresis int
	// MixThreshold is the ABSOLUTE heavy-fraction change versus baseline
	// that counts as mix drift, e.g. 0.15 = fifteen percentage points
	// (0 → DefaultDriftMixThreshold). Absolute, not relative, because the
	// baseline mix is often 0 — a dataset with no heavy samples at plan
	// time — and any relative measure against 0 is meaningless.
	MixThreshold float64
}

// Defaults for DriftConfig zero fields.
const (
	DefaultDriftAlpha        = 0.5
	DefaultDriftRelThreshold = 0.2
	DefaultDriftHysteresis   = 2
	DefaultDriftMixThreshold = 0.15
)

// Normalized resolves zero fields to defaults.
func (c DriftConfig) Normalized() (DriftConfig, error) {
	if c.Alpha == 0 {
		c.Alpha = DefaultDriftAlpha
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return c, fmt.Errorf("profiler: drift alpha %v outside (0, 1]", c.Alpha)
	}
	if c.RelThreshold == 0 {
		c.RelThreshold = DefaultDriftRelThreshold
	}
	if c.RelThreshold < 0 {
		return c, fmt.Errorf("profiler: negative drift threshold %v", c.RelThreshold)
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = DefaultDriftHysteresis
	}
	if c.Hysteresis < 1 {
		return c, fmt.Errorf("profiler: hysteresis %d < 1", c.Hysteresis)
	}
	if c.MixThreshold == 0 {
		c.MixThreshold = DefaultDriftMixThreshold
	}
	if c.MixThreshold < 0 || c.MixThreshold > 1 {
		return c, fmt.Errorf("profiler: mix threshold %v outside (0, 1]", c.MixThreshold)
	}
	return c, nil
}

// metricTrack is one metric's smoothed stream plus its drift state.
type metricTrack struct {
	kind     DriftKind
	ewma     *EWMA
	baseline float64
	streak   int // consecutive over-threshold epochs
}

// observe folds v in and reports whether the smoothed value has now been
// over threshold for hysteresis consecutive epochs.
func (m *metricTrack) observe(v float64, cfg DriftConfig) bool {
	m.ewma.Observe(v)
	if m.baseline <= 0 {
		return false // no baseline yet: nothing to drift from
	}
	rel := math.Abs(m.ewma.Value()-m.baseline) / m.baseline
	if rel < cfg.RelThreshold {
		m.streak = 0
		return false
	}
	m.streak++
	return m.streak >= cfg.Hysteresis
}

// TelemetrySnapshot is a point-in-time view of the smoothed metrics and
// drift state, for the monitor's gauges.
type TelemetrySnapshot struct {
	Epochs            uint64  `json:"epochs"`
	Bandwidth         float64 `json:"bandwidth"`
	BandwidthBaseline float64 `json:"bandwidth_baseline"`
	BandwidthStreak   int     `json:"bandwidth_streak"`
	StorageOccupancy  float64 `json:"storage_occupancy"`
	OccupancyBaseline float64 `json:"occupancy_baseline"`
	OccupancyStreak   int     `json:"occupancy_streak"`
	OpTimeSeconds     float64 `json:"op_time_seconds"`
	OpTimeBaseline    float64 `json:"op_time_baseline"`
	OpTimeStreak      int     `json:"op_time_streak"`
	ShardsUp          int     `json:"shards_up"`
	Shards            int     `json:"shards"`
	MixHeavyFrac      float64 `json:"mix_heavy_frac"`
	MixBaseline       float64 `json:"mix_baseline"`
	MixStreak         int     `json:"mix_streak"`
}

// Telemetry accumulates the per-epoch measurement stream and detects drift
// against the current plan's baseline. Safe for concurrent use.
type Telemetry struct {
	cfg DriftConfig

	mu        sync.Mutex
	bandwidth metricTrack
	occupancy metricTrack
	opTime    metricTrack
	shardsUp  int // -1 until first measured
	shards    int
	epochs    uint64
	// The heavy/light mix track. It cannot share metricTrack: its drift
	// test is absolute (a 0 baseline is legitimate) and its baseline is set
	// explicitly, not inferred from positivity.
	mix          *EWMA
	mixBaseline  float64
	mixBaselined bool
	mixStreak    int
}

// NewTelemetry builds a telemetry stream with cfg (zero fields default).
func NewTelemetry(cfg DriftConfig) (*Telemetry, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	t := &Telemetry{cfg: cfg, shardsUp: -1}
	for _, m := range []struct {
		track *metricTrack
		kind  DriftKind
	}{
		{&t.bandwidth, DriftBandwidth},
		{&t.occupancy, DriftStorageCPU},
		{&t.opTime, DriftOpTime},
	} {
		e, err := NewEWMA(cfg.Alpha)
		if err != nil {
			return nil, err
		}
		*m.track = metricTrack{kind: m.kind, ewma: e}
	}
	mixEWMA, err := NewEWMA(cfg.Alpha)
	if err != nil {
		return nil, err
	}
	t.mix = mixEWMA
	return t, nil
}

// Rebase records the environment the (re)computed plan assumes, resetting
// every drift streak: subsequent drift is measured against these values.
// Zero-valued fields keep the previous baseline for that metric. The
// controller calls this whenever it publishes a plan.
func (t *Telemetry) Rebase(bandwidth, occupancy float64, opTime time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, m := range []*metricTrack{&t.bandwidth, &t.occupancy, &t.opTime} {
		m.streak = 0
	}
	t.mixStreak = 0
	if bandwidth > 0 {
		t.bandwidth.baseline = bandwidth
	}
	if occupancy > 0 {
		t.occupancy.baseline = occupancy
	}
	if opTime > 0 {
		t.opTime.baseline = opTime.Seconds()
	}
}

// RebaseMix anchors the mix drift track to an explicit plan-time heavy
// fraction (the classifier's BaselineHeavyFrac), clearing the streak. A
// fraction of 0 is a real baseline — a profile with no heavy samples —
// so unlike Rebase only a negative value is ignored.
func (t *Telemetry) RebaseMix(frac float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mixStreak = 0
	if frac < 0 || math.IsNaN(frac) {
		return
	}
	t.mixBaseline = frac
	t.mixBaselined = true
}

// AdoptMixBaseline rebases the mix track onto the currently observed
// smoothed mix (no-op before any mix observation). The controller calls
// this when it replans: the new plan was computed in full knowledge of the
// shifted mix, so drift is measured against the mix as adopted — otherwise
// a persistent skew flip would re-trigger a replan every epoch forever.
func (t *Telemetry) AdoptMixBaseline() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mixStreak = 0
	if t.mix.Ready() {
		t.mixBaseline = t.mix.Value()
		t.mixBaselined = true
	}
}

// ObserveEpoch folds one epoch's measurements into the stream and returns
// the drifts that crossed their hysteresis gates this epoch (nil when the
// environment still matches the plan). While a sustained drift persists
// un-replanned it is re-reported every epoch; the controller's Rebase after
// replanning clears the streaks.
func (t *Telemetry) ObserveEpoch(s EpochSample) []Drift {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epochs++
	var out []Drift
	note := func(m *metricTrack, v float64) {
		if v <= 0 {
			return
		}
		if m.observe(v, t.cfg) {
			out = append(out, Drift{
				Kind:     m.kind,
				Epoch:    s.Epoch,
				Baseline: m.baseline,
				Current:  m.ewma.Value(),
			})
		}
	}
	note(&t.bandwidth, s.Bandwidth)
	note(&t.occupancy, s.StorageOccupancy)
	note(&t.opTime, s.OpTime.Seconds())

	if s.MixTotal > 0 && s.MixHeavy >= 0 && s.MixHeavy <= s.MixTotal {
		t.mix.Observe(float64(s.MixHeavy) / float64(s.MixTotal))
		if t.mixBaselined {
			if math.Abs(t.mix.Value()-t.mixBaseline) < t.cfg.MixThreshold {
				t.mixStreak = 0
			} else {
				t.mixStreak++
				if t.mixStreak >= t.cfg.Hysteresis {
					out = append(out, Drift{
						Kind:     DriftMix,
						Epoch:    s.Epoch,
						Baseline: t.mixBaseline,
						Current:  t.mix.Value(),
					})
				}
			}
		}
	}

	if s.Shards > 0 {
		if t.shardsUp >= 0 && s.ShardsUp != t.shardsUp {
			out = append(out, Drift{
				Kind:      DriftShard,
				Epoch:     s.Epoch,
				Baseline:  float64(t.shardsUp),
				Current:   float64(s.ShardsUp),
				Immediate: true,
			})
		}
		t.shardsUp = s.ShardsUp
		t.shards = s.Shards
	}
	return out
}

// ObserveShardChange reports a shard topology change observed between epoch
// boundaries (a kill or partition event landing mid-epoch). It returns the
// immediate drift to act on, or nil if the count did not change.
func (t *Telemetry) ObserveShardChange(epoch uint64, shardsUp, shards int) *Drift {
	t.mu.Lock()
	defer t.mu.Unlock()
	if shards <= 0 {
		return nil
	}
	prev := t.shardsUp
	t.shards = shards
	if prev == shardsUp {
		return nil
	}
	t.shardsUp = shardsUp
	if prev < 0 {
		return nil // first measurement: a baseline, not a change
	}
	return &Drift{
		Kind:      DriftShard,
		Epoch:     epoch,
		Baseline:  float64(prev),
		Current:   float64(shardsUp),
		Immediate: true,
	}
}

// Bandwidth returns the smoothed link bandwidth (bytes/second; 0 before any
// measurement).
func (t *Telemetry) Bandwidth() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bandwidth.ewma.Value()
}

// Snapshot returns the current gauge view for the monitor.
func (t *Telemetry) Snapshot() TelemetrySnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	up := t.shardsUp
	if up < 0 {
		up = 0
	}
	return TelemetrySnapshot{
		Epochs:            t.epochs,
		Bandwidth:         t.bandwidth.ewma.Value(),
		BandwidthBaseline: t.bandwidth.baseline,
		BandwidthStreak:   t.bandwidth.streak,
		StorageOccupancy:  t.occupancy.ewma.Value(),
		OccupancyBaseline: t.occupancy.baseline,
		OccupancyStreak:   t.occupancy.streak,
		OpTimeSeconds:     t.opTime.ewma.Value(),
		OpTimeBaseline:    t.opTime.baseline,
		OpTimeStreak:      t.opTime.streak,
		ShardsUp:          up,
		Shards:            t.shards,
		MixHeavyFrac:      t.mix.Value(),
		MixBaseline:       t.mixBaseline,
		MixStreak:         t.mixStreak,
	}
}
