// Package cluster is the sharded storage tier: a rendezvous-hashed shard
// map that assigns every sample to exactly one storage server, a launcher
// that runs one storage.Server per shard (each owning only its shard's
// samples, with its own core-bounded executor and optionally its own shaped
// link), and a fan-out client that partitions batch fetches per shard,
// pipelines them concurrently over one session per shard, and reassembles
// results in input order. It multiplies both binding resources of the
// single-node setup — storage CPU cores and the storage↔compute link — the
// way NoPFS/CoorDL-style distributed ML I/O tiers do.
package cluster

import (
	"fmt"
)

// LayoutVersion identifies the sample→shard placement function. It is part
// of the hash input, so changing how placement works requires bumping it
// deliberately: a client and a cluster disagree about placement only if they
// disagree about this constant.
const LayoutVersion = 1

// ShardMap deterministically assigns sample IDs to shards by rendezvous
// (highest-random-weight) hashing: every (sample, shard) pair gets a stable
// pseudo-random weight and the sample lives on the shard with the highest
// one. The layout is stable across processes and releases (it depends only
// on FNV-1a, a fixed avalanche finalizer, and LayoutVersion) and resizing
// from N to N+1 shards moves only
// ~1/(N+1) of the samples — the HRW property that makes rebalancing cheap.
type ShardMap struct {
	shards  int
	version uint32
}

// NewShardMap builds a map over shards servers.
func NewShardMap(shards int) (*ShardMap, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: shard count %d < 1", shards)
	}
	return &ShardMap{shards: shards, version: LayoutVersion}, nil
}

// Shards returns the shard count.
func (m *ShardMap) Shards() int { return m.shards }

// Version returns the placement-layout version baked into the hash.
func (m *ShardMap) Version() uint32 { return m.version }

// FNV-1a 64-bit constants.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// weight is the HRW score of placing sample on shard: FNV-1a over the
// layout version, the shard index, and the sample ID (each mixed in
// big-endian byte order so the value is identical on every platform),
// finished with a 64-bit avalanche pass. The finalizer is part of layout
// version 1: raw FNV-1a barely diffuses the trailing bytes — the sample is
// mixed last and its low bytes see only one or two multiplications by the
// 2^40-sized prime — so without it the cross-shard ordering is nearly
// constant over small sample IDs and HRW degenerates to one shard.
func (m *ShardMap) weight(sample uint32, shard int) uint64 {
	h := uint64(fnvOffset)
	mix := func(v uint32) {
		for i := 3; i >= 0; i-- {
			h ^= uint64(byte(v >> (8 * i)))
			h *= fnvPrime
		}
	}
	mix(m.version)
	mix(uint32(shard))
	mix(sample)
	// fmix64-style finalizer (MurmurHash3).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ShardOf returns the shard owning sample. Ties (astronomically unlikely)
// break toward the lower shard index, deterministically.
func (m *ShardMap) ShardOf(sample uint32) int {
	if m.shards == 1 {
		return 0
	}
	best, bestW := 0, m.weight(sample, 0)
	for s := 1; s < m.shards; s++ {
		if w := m.weight(sample, s); w > bestW {
			best, bestW = s, w
		}
	}
	return best
}

// Partition groups the positions of samples by owning shard: element s of
// the result lists the indices i (into samples) with ShardOf(samples[i]) ==
// s, in input order. Reassembling a fanned-out batch is then a matter of
// writing each shard's results back through its index list.
func (m *ShardMap) Partition(samples []uint32) [][]int {
	out := make([][]int, m.shards)
	for i, id := range samples {
		s := m.ShardOf(id)
		out[s] = append(out[s], i)
	}
	return out
}

// Owned lists the sample IDs in [0, n) placed on shard, ascending.
func (m *ShardMap) Owned(n, shard int) []uint32 {
	var out []uint32
	for id := 0; id < n; id++ {
		if m.ShardOf(uint32(id)) == shard {
			out = append(out, uint32(id))
		}
	}
	return out
}

// Counts histograms the first n sample IDs by shard.
func (m *ShardMap) Counts(n int) []int {
	counts := make([]int, m.shards)
	for id := 0; id < n; id++ {
		counts[m.ShardOf(uint32(id))]++
	}
	return counts
}
