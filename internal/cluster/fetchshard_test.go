package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/wire"
)

// TestFetchShard drives the per-shard issue path the clairvoyant prefetcher
// uses: sub-batches routed by ShardInfo's placement function must come back
// in input order with the exact stored bytes, from the right shard.
func TestFetchShard(t *testing.T) {
	const n = 48
	store := testStore(t, n)
	c := launch(t, store, 3, 1)
	sc := shardedClient(t, c, false)

	shards, shardOf, ok := sc.ShardInfo()
	if !ok || shards != 3 {
		t.Fatalf("ShardInfo = (%d, _, %v), want (3, _, true)", shards, ok)
	}
	ctx := context.Background()
	served := 0
	for s := 0; s < shards; s++ {
		var samples []uint32
		var splits []int
		for id := 0; id < n; id++ {
			if shardOf(uint32(id)) == s {
				samples = append(samples, uint32(id))
				splits = append(splits, 0)
			}
		}
		if len(samples) == 0 {
			continue
		}
		res, err := sc.FetchShard(ctx, s, samples, splits, 1)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		for k, r := range res {
			if r.Sample != samples[k] || r.Status != wire.FetchOK || r.Err != nil {
				t.Fatalf("shard %d item %d: sample %d status %v err %v", s, k, r.Sample, r.Status, r.Err)
			}
			want, err := store.Get(samples[k])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(r.Artifact.Raw, want) {
				t.Fatalf("shard %d sample %d: wrong payload", s, r.Sample)
			}
		}
		served += len(res)
	}
	if served != n {
		t.Fatalf("served %d samples across shards, want %d", served, n)
	}

	if _, err := sc.FetchShard(ctx, 7, []uint32{0}, []int{0}, 1); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := sc.FetchShard(ctx, 0, []uint32{0}, []int{0, 1}, 1); err == nil {
		t.Fatal("mismatched splits accepted")
	}
}

// TestFetchShardPartitioned: a severed shard's FetchShard fails with
// ErrShardDown (the scheduler's fail-fast classifier) while other shards
// keep serving.
func TestFetchShardPartitioned(t *testing.T) {
	const n = 30
	store := testStore(t, n)
	c := launchChaos(t, store, 2, &chaos.Plan{Seed: 1})
	sc := shardedClient(t, c, true)

	if err := c.PartitionShard(0, true); err != nil {
		t.Fatal(err)
	}
	_, shardOf, _ := sc.ShardInfo()
	var dead, live []uint32
	for id := 0; id < n; id++ {
		if shardOf(uint32(id)) == 0 {
			dead = append(dead, uint32(id))
		} else {
			live = append(live, uint32(id))
		}
	}
	ctx := context.Background()
	_, err := sc.FetchShard(ctx, 0, dead[:1], []int{0}, 1)
	if !errors.Is(err, cluster.ErrShardDown) {
		t.Fatalf("partitioned shard error = %v, want ErrShardDown", err)
	}
	res, err := sc.FetchShard(ctx, 1, live[:2], []int{0, 0}, 1)
	if err != nil {
		t.Fatalf("healthy shard: %v", err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("healthy shard sample %d: %v", r.Sample, r.Err)
		}
	}
	var _ storage.ShardRouter = sc // compile-time: the fan-out client routes
}
