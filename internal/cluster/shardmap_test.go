package cluster

import (
	"reflect"
	"testing"
)

// TestShardOfGolden pins the layout-version-1 placement: these values must
// never change without bumping LayoutVersion, or deployed clients and
// clusters would silently disagree about who owns what.
func TestShardOfGolden(t *testing.T) {
	golden := map[int][]int{
		2: {0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 0, 1, 1},
		3: {0, 2, 0, 0, 1, 1, 2, 1, 0, 1, 2, 2, 2, 2, 1, 1},
		4: {3, 2, 0, 3, 1, 1, 2, 1, 0, 3, 2, 2, 2, 2, 3, 1},
	}
	for k, want := range golden {
		m, err := NewShardMap(k)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int, len(want))
		for id := range got {
			got[id] = m.ShardOf(uint32(id))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("k=%d: layout drifted\n got %v\nwant %v (bump LayoutVersion if intentional)", k, got, want)
		}
	}
}

func TestNewShardMapRejectsNonPositive(t *testing.T) {
	for _, k := range []int{0, -1} {
		if _, err := NewShardMap(k); err == nil {
			t.Errorf("NewShardMap(%d): want error", k)
		}
	}
}

func TestShardOfSingleShard(t *testing.T) {
	m, err := NewShardMap(1)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint32(0); id < 100; id++ {
		if s := m.ShardOf(id); s != 0 {
			t.Fatalf("ShardOf(%d) = %d with one shard", id, s)
		}
	}
}

// TestBalance checks the HRW weights actually spread load: each shard's
// share of 10k samples must be within 20% of the fair share.
func TestBalance(t *testing.T) {
	const n = 10000
	for k := 2; k <= 8; k++ {
		m, err := NewShardMap(k)
		if err != nil {
			t.Fatal(err)
		}
		fair := float64(n) / float64(k)
		for s, c := range m.Counts(n) {
			if ratio := float64(c) / fair; ratio < 0.8 || ratio > 1.2 {
				t.Errorf("k=%d shard %d holds %d samples (%.2fx fair share)", k, s, c, ratio)
			}
		}
	}
}

// TestPartitionOwnedCountsAgree checks the three views of the placement are
// consistent with ShardOf and with each other.
func TestPartitionOwnedCountsAgree(t *testing.T) {
	const n = 500
	m, err := NewShardMap(4)
	if err != nil {
		t.Fatal(err)
	}

	samples := make([]uint32, n)
	for i := range samples {
		samples[i] = uint32(i)
	}
	parts := m.Partition(samples)
	counts := m.Counts(n)

	total := 0
	for s, idxs := range parts {
		if len(idxs) != counts[s] {
			t.Errorf("shard %d: Partition has %d, Counts says %d", s, len(idxs), counts[s])
		}
		owned := m.Owned(n, s)
		if len(owned) != counts[s] {
			t.Errorf("shard %d: Owned has %d, Counts says %d", s, len(owned), counts[s])
		}
		for j, i := range idxs {
			if got := m.ShardOf(samples[i]); got != s {
				t.Errorf("Partition put sample %d on shard %d, ShardOf says %d", samples[i], s, got)
			}
			if owned[j] != samples[i] {
				t.Errorf("shard %d: Owned[%d] = %d, Partition order gives %d", s, j, owned[j], samples[i])
			}
			if j > 0 && idxs[j-1] >= i {
				t.Errorf("shard %d: Partition indices not in input order", s)
			}
		}
		total += len(idxs)
	}
	if total != n {
		t.Errorf("partition covers %d of %d samples", total, n)
	}
}

// TestPartitionPreservesDuplicatesAndOrder: Partition is positional, so
// duplicate IDs land on the same shard at distinct indices, in input order.
func TestPartitionPreservesDuplicatesAndOrder(t *testing.T) {
	m, err := NewShardMap(2)
	if err != nil {
		t.Fatal(err)
	}
	in := []uint32{7, 7, 1, 7}
	parts := m.Partition(in)
	seen := 0
	for s, idxs := range parts {
		for _, i := range idxs {
			if m.ShardOf(in[i]) != s {
				t.Fatalf("index %d on wrong shard", i)
			}
			seen++
		}
	}
	if seen != len(in) {
		t.Fatalf("partition covers %d of %d entries", seen, len(in))
	}
}

// TestResizeMovesFewSamples: growing K→K+1 must relocate roughly 1/(K+1) of
// the samples — the rendezvous property that makes rebalancing cheap. A
// modulo placement would move ~K/(K+1) instead.
func TestResizeMovesFewSamples(t *testing.T) {
	const n = 10000
	for k := 2; k <= 6; k++ {
		a, err := NewShardMap(k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewShardMap(k + 1)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for id := uint32(0); id < n; id++ {
			if a.ShardOf(id) != b.ShardOf(id) {
				moved++
			}
		}
		ideal := float64(n) / float64(k+1)
		if f := float64(moved); f < 0.5*ideal || f > 1.5*ideal {
			t.Errorf("%d→%d shards moved %d samples; want ~%.0f (±50%%)", k, k+1, moved, ideal)
		}
	}
}
