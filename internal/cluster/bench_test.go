package cluster_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/wire"
)

// BenchmarkShardedFetch measures aggregate fetch throughput as the storage
// tier grows from one to four shards, each behind its own 500 Mbps shaped
// link (the paper's link, one per shard). Reported bytes/s should rise
// roughly with the shard count: the fan-out client keeps every link busy at
// once, which is the point of sharding the tier.
func BenchmarkShardedFetch(b *testing.B) {
	const n = 512
	store := testStore(b, n)
	for shards := 1; shards <= 4; shards++ {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := cluster.Launch(cluster.Config{
				Shards:   shards,
				Store:    store,
				Pipeline: testPipe(),
				LinkMbps: 500,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			sc, err := c.NewShardedClient(storage.ClientOptions{JobID: 1}, 1, 0, false)
			if err != nil {
				b.Fatal(err)
			}
			defer sc.Close()

			batch := make([]uint32, wire.MaxBatchItems)
			splits := make([]int, len(batch))
			ctx := context.Background()

			// One warm-up round sizes the per-iteration payload for SetBytes.
			for i := range batch {
				batch[i] = uint32(i)
			}
			res, err := sc.FetchBatch(ctx, batch, splits, 1)
			if err != nil {
				b.Fatal(err)
			}
			var bytes int64
			for _, r := range res {
				bytes += int64(r.WireBytes)
			}
			b.SetBytes(bytes)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := uint32(i) * uint32(len(batch)) % n
				for j := range batch {
					batch[j] = (base + uint32(j)) % n
				}
				if _, err := sc.FetchBatch(ctx, batch, splits, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
