package cluster_test

// Property tests for the rendezvous shard map, driven by testing/quick:
// randomized shard counts and sample populations must always satisfy the
// placement invariants the fan-out client and the chaos soak's failure
// accounting both lean on.

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

// quickCfg bounds the random draws: shard counts stay small (that is the
// deployment reality), sample IDs use the full uint32 space.
var quickCfg = &quick.Config{MaxCount: 200}

// TestQuickOneOwnerPerKey: ShardOf is a function — one owner, always in
// range, stable across calls and across independently built maps.
func TestQuickOneOwnerPerKey(t *testing.T) {
	f := func(shardSeed uint8, sample uint32) bool {
		shards := int(shardSeed)%16 + 1
		m, err := cluster.NewShardMap(shards)
		if err != nil {
			return false
		}
		m2, err := cluster.NewShardMap(shards)
		if err != nil {
			return false
		}
		s := m.ShardOf(sample)
		return s >= 0 && s < shards && s == m.ShardOf(sample) && s == m2.ShardOf(sample)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPartitionIsExactCover: Partition's index lists form an exact
// cover of the input — every position appears once, under its owning shard,
// in input order.
func TestQuickPartitionIsExactCover(t *testing.T) {
	f := func(shardSeed uint8, samples []uint32) bool {
		shards := int(shardSeed)%8 + 1
		m, err := cluster.NewShardMap(shards)
		if err != nil {
			return false
		}
		parts := m.Partition(samples)
		if len(parts) != shards {
			return false
		}
		seen := make([]bool, len(samples))
		for s, idxs := range parts {
			prev := -1
			for _, i := range idxs {
				if i < 0 || i >= len(samples) || seen[i] || i <= prev {
					return false
				}
				if m.ShardOf(samples[i]) != s {
					return false
				}
				seen[i] = true
				prev = i
			}
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBalanceWithinTolerance: over a dense sample range, every shard's
// share stays within 25% of the ideal n/K — rendezvous hashing with a real
// avalanche keeps the layout statistically flat.
func TestQuickBalanceWithinTolerance(t *testing.T) {
	f := func(shardSeed uint8) bool {
		shards := int(shardSeed)%8 + 1
		const n = 4096
		m, err := cluster.NewShardMap(shards)
		if err != nil {
			return false
		}
		ideal := float64(n) / float64(shards)
		total := 0
		for s, c := range m.Counts(n) {
			total += c
			if math.Abs(float64(c)-ideal) > 0.25*ideal {
				t.Logf("shard %d/%d owns %d of %d (ideal %.0f)", s, shards, c, n, ideal)
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickResizeMovesOnlyToNewShard: growing K → K+1 never reshuffles a
// key between surviving shards — a key either stays put or moves to the new
// shard — and the number that move is ≈ n/(K+1). This is the HRW property
// the roadmap's cheap-rebalancing claim rests on.
func TestQuickResizeMovesOnlyToNewShard(t *testing.T) {
	f := func(shardSeed uint8, base uint32) bool {
		k := int(shardSeed)%6 + 1
		const n = 2048
		small, err := cluster.NewShardMap(k)
		if err != nil {
			return false
		}
		big, err := cluster.NewShardMap(k + 1)
		if err != nil {
			return false
		}
		moved := 0
		for i := 0; i < n; i++ {
			id := base + uint32(i) // a window anywhere in key space
			before, after := small.ShardOf(id), big.ShardOf(id)
			if after != before {
				if after != k { // moved somewhere other than the new shard
					t.Logf("K=%d: key %d moved %d → %d, not to new shard %d", k, id, before, after, k)
					return false
				}
				moved++
			}
		}
		// Expected share is n/(K+1); allow ±40% relative slack for a window
		// of only 2048 keys.
		want := float64(n) / float64(k+1)
		if math.Abs(float64(moved)-want) > 0.4*want {
			t.Logf("K=%d: %d keys moved, expected ≈ %.0f", k, moved, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOwnedMatchesShardOf: Owned is exactly the ascending preimage of
// ShardOf over [0, n) — the chaos soak trusts this for its exact
// partition-failure accounting.
func TestQuickOwnedMatchesShardOf(t *testing.T) {
	f := func(shardSeed uint8, nSeed uint16) bool {
		shards := int(shardSeed)%8 + 1
		n := int(nSeed)%512 + shards
		m, err := cluster.NewShardMap(shards)
		if err != nil {
			return false
		}
		total := 0
		for s := 0; s < shards; s++ {
			owned := m.Owned(n, s)
			total += len(owned)
			prev := int64(-1)
			for _, id := range owned {
				if int64(id) <= prev || m.ShardOf(id) != s {
					return false
				}
				prev = int64(id)
			}
		}
		return total == n
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
