package cluster

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/simclock"
	"repro/internal/storage"
)

// Config describes an in-process sharded storage tier.
type Config struct {
	// Shards is the server count (≥ 1).
	Shards int
	// Store is the full dataset; Launch partitions it so each server owns
	// only its shard's samples.
	Store *storage.Store
	// Pipeline is the preprocessing pipeline every server runs.
	Pipeline *pipeline.Pipeline
	// CoresPerShard is each server's offload-CPU budget (0 disables
	// offloading on every shard).
	CoresPerShard int
	// Slowdown models weaker storage CPUs (0 → 1).
	Slowdown float64
	// LinkMbps, when positive, caps each shard's outbound link with its own
	// token bucket — K shards means K independent links, which is the whole
	// point of sharding the tier.
	LinkMbps float64
	// MaxInFlight bounds concurrently handled requests per connection on
	// each server (0 → storage default).
	MaxInFlight int
	// Admission, when non-nil, gates every shard's fetch handlers through
	// one shared in-flight byte budget with per-tenant weighted queues —
	// global admission control across the tier, on top of the per-connection
	// MaxInFlight semaphore. Nil disables admission (no gate at all).
	Admission *storage.AdmissionController
	// Clock drives the link shapers and chaos pauses; nil means real time.
	Clock simclock.Clock
	// Logger receives per-server connection errors; nil silences them.
	Logger *log.Logger
	// Chaos, when non-nil, wraps every shard's listener in a seeded fault
	// injector: shard s's connections run the schedules of Chaos.Source(s),
	// and the shard can be partitioned at runtime via PartitionShard. A nil
	// plan leaves the fabric untouched (no wrapper at all).
	Chaos *chaos.Plan
}

// Cluster is a running set of shard servers reachable over in-memory pipe
// listeners. It exists for tests, benchmarks, and examples; production
// deployments run one sophon-server process per shard instead.
type Cluster struct {
	m         *ShardMap
	servers   []*storage.Server
	listeners []*netsim.PipeListener
	chaos     []*chaos.Listener // nil entries when Config.Chaos was nil

	mu     sync.Mutex
	killed []bool
}

// Launch partitions cfg.Store by the shard map and starts one server per
// shard, each behind its own (optionally shaped) listener.
func Launch(cfg Config) (*Cluster, error) {
	if cfg.Store == nil {
		return nil, errors.New("cluster: launch needs a store")
	}
	if cfg.Pipeline == nil {
		return nil, errors.New("cluster: launch needs a pipeline")
	}
	m, err := NewShardMap(cfg.Shards)
	if err != nil {
		return nil, err
	}
	n := cfg.Store.N()
	if n < cfg.Shards {
		return nil, fmt.Errorf("cluster: %d samples cannot populate %d shards", n, cfg.Shards)
	}
	c := &Cluster{m: m, killed: make([]bool, cfg.Shards)}
	for s := 0; s < cfg.Shards; s++ {
		store, err := shardStore(cfg.Store, m, s)
		if err != nil {
			c.Close()
			return nil, err
		}
		srv, err := storage.NewServer(storage.ServerConfig{
			Store:       store,
			Pipeline:    cfg.Pipeline,
			Cores:       cfg.CoresPerShard,
			Slowdown:    cfg.Slowdown,
			MaxInFlight: cfg.MaxInFlight,
			Admission:   cfg.Admission,
			Logger:      cfg.Logger,
		})
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
		}
		l := netsim.NewPipeListener()
		var serveL net.Listener = l
		if cfg.LinkMbps > 0 {
			bucket, err := netsim.NewTokenBucket(netsim.Mbps(cfg.LinkMbps), 32<<10, cfg.Clock)
			if err != nil {
				srv.Close()
				c.Close()
				return nil, err
			}
			serveL = netsim.ShapeListener(l, bucket)
		}
		var cl *chaos.Listener
		if cfg.Chaos != nil {
			// Chaos wraps outermost so faults hit whole frames as the server
			// reads and writes them, before shaping chunks the bytes.
			cl = chaos.WrapListener(serveL, cfg.Chaos.Source(s), cfg.Clock)
			serveL = cl
		}
		c.servers = append(c.servers, srv)
		c.listeners = append(c.listeners, l)
		c.chaos = append(c.chaos, cl)
		go srv.Serve(serveL)
	}
	return c, nil
}

// shardStore builds shard s's partial store from the full dataset.
func shardStore(full *storage.Store, m *ShardMap, s int) (*storage.Store, error) {
	owned := m.Owned(full.N(), s)
	if len(owned) == 0 {
		return nil, fmt.Errorf("cluster: shard %d owns no samples", s)
	}
	objects := make(map[uint32][]byte, len(owned))
	for _, id := range owned {
		b, err := full.Get(id)
		if err != nil {
			return nil, err
		}
		objects[id] = b
	}
	name := fmt.Sprintf("%s/shard-%d-of-%d", full.Name(), s, m.Shards())
	return storage.NewPartialStore(name, full.N(), objects)
}

// ShardMap returns the cluster's placement map.
func (c *Cluster) ShardMap() *ShardMap { return c.m }

// Shards returns the server count.
func (c *Cluster) Shards() int { return len(c.servers) }

// Server returns shard s's server (for counters and direct inspection).
func (c *Cluster) Server(s int) *storage.Server { return c.servers[s] }

// Counters returns every shard's counters, indexed by shard.
func (c *Cluster) Counters() []*storage.Counters {
	out := make([]*storage.Counters, len(c.servers))
	for i, srv := range c.servers {
		out[i] = srv.Counters()
	}
	return out
}

// DialShard opens a session to shard s over its in-memory listener.
func (c *Cluster) DialShard(s int, opts storage.ClientOptions) (*storage.Client, error) {
	if s < 0 || s >= len(c.listeners) {
		return nil, fmt.Errorf("cluster: shard %d out of range", s)
	}
	conn, err := c.listeners[s].Dial()
	if err != nil {
		return nil, fmt.Errorf("cluster: dial shard %d: %w", s, err)
	}
	return storage.NewClientWithOptions(conn, opts)
}

// NewShardedClient builds the fan-out client: one reconnecting session per
// shard (attempts tries per operation with backoff between redials),
// degraded per DegradedMode.
func (c *Cluster) NewShardedClient(opts storage.ClientOptions, attempts int, backoff time.Duration, degraded bool) (*ShardedClient, error) {
	shards := make([]ShardClient, len(c.servers))
	for s := range c.servers {
		s := s
		rc, err := storage.NewReconnecting(func() (*storage.Client, error) {
			return c.DialShard(s, opts)
		}, attempts, backoff, nil)
		if err != nil {
			for _, prev := range shards[:s] {
				if prev != nil {
					prev.Close()
				}
			}
			return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
		}
		shards[s] = rc
	}
	return NewShardedClient(c.m, shards, degraded)
}

// PartitionShard reversibly severs (on=true) or heals (on=false) shard s's
// network while the server process stays alive — the partition half of the
// fault model, distinct from the crash KillShard models. It errors when the
// cluster was launched without a chaos plan.
func (c *Cluster) PartitionShard(s int, on bool) error {
	if s < 0 || s >= len(c.chaos) {
		return fmt.Errorf("cluster: shard %d out of range", s)
	}
	if c.chaos[s] == nil {
		return fmt.Errorf("cluster: shard %d launched without chaos; partitions need Config.Chaos", s)
	}
	c.chaos[s].Partition(on)
	return nil
}

// ChaosStats returns shard s's injected-fault counters (zero snapshot when
// the cluster runs without chaos).
func (c *Cluster) ChaosStats(s int) chaos.StatsSnapshot {
	if s < 0 || s >= len(c.chaos) || c.chaos[s] == nil {
		return chaos.StatsSnapshot{}
	}
	return c.chaos[s].Source().Stats().Snapshot()
}

// NewShardedClientWithPolicy is NewShardedClient with a full retry policy —
// jittered exponential backoff and a per-operation attempt budget — instead
// of the constant-backoff legacy knobs.
func (c *Cluster) NewShardedClientWithPolicy(opts storage.ClientOptions, policy storage.RetryPolicy, degraded bool) (*ShardedClient, error) {
	shards := make([]ShardClient, len(c.servers))
	for s := range c.servers {
		s := s
		rc, err := storage.NewReconnectingWithPolicy(func() (*storage.Client, error) {
			return c.DialShard(s, opts)
		}, policy, nil)
		if err != nil {
			for _, prev := range shards[:s] {
				if prev != nil {
					prev.Close()
				}
			}
			return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
		}
		shards[s] = rc
	}
	return NewShardedClient(c.m, shards, degraded)
}

// KillShard abruptly stops shard s — server and listener — so fetches
// routed to it fail. It models a storage-node crash for degradation tests;
// idempotent per shard.
func (c *Cluster) KillShard(s int) error {
	if s < 0 || s >= len(c.servers) {
		return fmt.Errorf("cluster: shard %d out of range", s)
	}
	c.mu.Lock()
	dead := c.killed[s]
	c.killed[s] = true
	c.mu.Unlock()
	if dead {
		return nil
	}
	c.listeners[s].Close()
	return c.servers[s].Close()
}

// Close stops every shard; idempotent.
func (c *Cluster) Close() error {
	var first error
	for s := range c.servers {
		if err := c.KillShard(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}
