package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/storage"
	"repro/internal/wire"
)

// ShardClient is one shard's session as the fan-out client needs it. It is
// satisfied by *storage.Client and *storage.ReconnectingClient, so per-shard
// resilience composes underneath the fan-out.
type ShardClient interface {
	Fetch(ctx context.Context, sample uint32, split int, epoch uint64) (storage.FetchResult, error)
	FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error)
	Stats(ctx context.Context) (wire.StatsResp, error)
	NumSamples() int
	Close() error
}

// ErrShardDown marks a per-item failure caused by an unreachable shard. In
// DegradedMode it reaches the trainer through FetchResult.Err so only the
// dead shard's samples fail; the errors.Is chain lets callers distinguish a
// crashed shard from an application-level rejection.
var ErrShardDown = errors.New("cluster: shard down")

// ShardedClient implements the trainer's storage-client contract over N
// shard sessions. Fetches route by the shard map; batch fetches partition
// per shard, fan out concurrently (each shard's session pipelines its own
// sub-batch), and reassemble in input order. All methods are safe for
// concurrent use — index writes into result slices are disjoint per shard.
//
// DegradedMode controls what a down shard costs: off, a shard-level
// transport failure fails the whole call (an epoch aborts, today's
// single-server behaviour); on, it fails only that shard's items, each
// FetchResult carrying an ErrShardDown-wrapped error while every healthy
// shard's samples still flow.
type ShardedClient struct {
	m        *ShardMap
	shards   []ShardClient
	degraded bool
	n        int
}

// NewShardedClient wires shard sessions to a shard map. Every session must
// agree on the dataset size — disagreeing shards mean a misconfigured
// cluster, and silently fetching from it would corrupt placement.
func NewShardedClient(m *ShardMap, shards []ShardClient, degraded bool) (*ShardedClient, error) {
	if m == nil {
		return nil, errors.New("cluster: nil shard map")
	}
	if len(shards) != m.Shards() {
		return nil, fmt.Errorf("cluster: %d sessions for %d shards", len(shards), m.Shards())
	}
	n := shards[0].NumSamples()
	for s, c := range shards {
		if c == nil {
			return nil, fmt.Errorf("cluster: nil session for shard %d", s)
		}
		if c.NumSamples() != n {
			return nil, fmt.Errorf("cluster: shard %d reports %d samples, shard 0 reports %d",
				s, c.NumSamples(), n)
		}
	}
	return &ShardedClient{m: m, shards: shards, degraded: degraded, n: n}, nil
}

// NumSamples returns the dataset size every shard agreed on.
func (c *ShardedClient) NumSamples() int { return c.n }

// ShardMap returns the placement map the client routes by.
func (c *ShardedClient) ShardMap() *ShardMap { return c.m }

// Shard returns shard s's underlying session.
func (c *ShardedClient) Shard(s int) ShardClient { return c.shards[s] }

// SetPlanVersion implements storage.PlanVersioner by forwarding to every
// shard session that supports stamping, so all shards of a cluster observe
// the same control-plane version.
func (c *ShardedClient) SetPlanVersion(v uint32) {
	for _, sc := range c.shards {
		if pv, ok := sc.(storage.PlanVersioner); ok {
			pv.SetPlanVersion(v)
		}
	}
}

// downErr wraps a shard-level transport failure for one item.
func downErr(shard int, err error) error {
	return fmt.Errorf("%w: shard %d: %v", ErrShardDown, shard, err)
}

// Fetch routes the sample to its owning shard. In DegradedMode a transport
// failure still returns an error (a single fetch has no healthy remainder
// to salvage), but wrapped in ErrShardDown and mirrored into the result's
// Err so batch and single paths classify failures identically.
func (c *ShardedClient) Fetch(ctx context.Context, sample uint32, split int, epoch uint64) (storage.FetchResult, error) {
	s := c.m.ShardOf(sample)
	res, err := c.shards[s].Fetch(ctx, sample, split, epoch)
	if err != nil && !isItemError(err) && ctx.Err() == nil {
		err = downErr(s, err)
		res.Sample = sample
		res.Err = err
	}
	return res, err
}

// isItemError reports whether err is an application-level per-item
// rejection rather than a shard transport failure.
func isItemError(err error) bool {
	return errors.Is(err, storage.ErrSampleMissing) ||
		errors.Is(err, storage.ErrBadSplitReq) ||
		errors.Is(err, storage.ErrFetchFailed)
}

// FetchBatch partitions the batch by owning shard, issues one concurrent
// sub-batch per shard, and reassembles the per-item results in input order.
// Per-item semantics match storage.Client.FetchBatch: the returned error is
// non-nil only for validation failures or — outside DegradedMode — a shard
// transport failure.
func (c *ShardedClient) FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error) {
	if len(samples) == 0 {
		return nil, errors.New("cluster: empty batch")
	}
	if len(samples) != len(splits) {
		return nil, fmt.Errorf("cluster: %d samples but %d splits", len(samples), len(splits))
	}
	if len(samples) > wire.MaxBatchItems {
		return nil, fmt.Errorf("cluster: batch of %d exceeds %d", len(samples), wire.MaxBatchItems)
	}
	parts := c.m.Partition(samples)
	out := make([]storage.FetchResult, len(samples))
	errs := make([]error, c.m.Shards())
	var wg sync.WaitGroup
	for s, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			subSamples := make([]uint32, len(idxs))
			subSplits := make([]int, len(idxs))
			for j, i := range idxs {
				subSamples[j] = samples[i]
				subSplits[j] = splits[i]
			}
			res, err := c.shards[s].FetchBatch(ctx, subSamples, subSplits, epoch)
			if err != nil {
				err = downErr(s, err)
				errs[s] = err
				// Degraded: the shard's items fail individually; the
				// healthy shards' results stand.
				for j, i := range idxs {
					out[i] = storage.FetchResult{
						Sample: subSamples[j],
						Split:  subSplits[j],
						Status: wire.FetchFailed,
						Err:    err,
					}
				}
				return
			}
			for j, i := range idxs {
				out[i] = res[j]
			}
		}(s, idxs)
	}
	wg.Wait()
	if !c.degraded {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ShardInfo implements storage.ShardRouter: it exposes the placement map so
// a lookahead scheduler can partition the epoch's access stream per shard
// with exactly the routing FetchBatch would use.
func (c *ShardedClient) ShardInfo() (int, func(sample uint32) int, bool) {
	return c.m.Shards(), c.m.ShardOf, true
}

// FetchShard implements storage.ShardRouter: one round trip against a single
// shard's session, bypassing the partitioner. It is the per-shard issue
// queue of the clairvoyant prefetcher — each shard's link is kept busy by
// its own stream of FetchShard calls instead of sharing one globally-ordered
// window. Callers route by the same ShardMap (ShardInfo), so samples are
// expected to be owned by the shard; a shard transport failure is returned
// as an ErrShardDown-wrapped error regardless of DegradedMode — degrading is
// the scheduler's decision, which knows whether other shards can keep
// streaming.
func (c *ShardedClient) FetchShard(ctx context.Context, shard int, samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error) {
	if shard < 0 || shard >= len(c.shards) {
		return nil, fmt.Errorf("cluster: shard %d out of range [0,%d)", shard, len(c.shards))
	}
	if len(samples) == 0 {
		return nil, errors.New("cluster: empty batch")
	}
	if len(samples) != len(splits) {
		return nil, fmt.Errorf("cluster: %d samples but %d splits", len(samples), len(splits))
	}
	if len(samples) > wire.MaxBatchItems {
		return nil, fmt.Errorf("cluster: batch of %d exceeds %d", len(samples), wire.MaxBatchItems)
	}
	res, err := c.shards[shard].FetchBatch(ctx, samples, splits, epoch)
	if err != nil && !isItemError(err) && ctx.Err() == nil {
		err = downErr(shard, err)
	}
	return res, err
}

// Stats aggregates counters across the reachable shards (summing every
// field). A down shard is skipped in DegradedMode; otherwise its error is
// returned alongside the partial aggregate.
func (c *ShardedClient) Stats(ctx context.Context) (wire.StatsResp, error) {
	var agg wire.StatsResp
	var firstErr error
	for s, sc := range c.shards {
		st, err := sc.Stats(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = downErr(s, err)
			}
			continue
		}
		agg.SamplesServed += st.SamplesServed
		agg.OpsExecuted += st.OpsExecuted
		agg.BytesSent += st.BytesSent
		agg.ServerCPUNanos += st.ServerCPUNanos
	}
	if c.degraded {
		return agg, nil
	}
	return agg, firstErr
}

// ShardStat is one shard's stats snapshot, or the error that prevented it.
type ShardStat struct {
	Shard int
	Stats wire.StatsResp
	Err   error
}

// ShardStats returns per-shard stats so a deployment can be watched server
// by server.
func (c *ShardedClient) ShardStats(ctx context.Context) []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for s, sc := range c.shards {
		st, err := sc.Stats(ctx)
		out[s] = ShardStat{Shard: s, Stats: st, Err: err}
	}
	return out
}

// Close shuts every shard session; the first error wins.
func (c *ShardedClient) Close() error {
	var first error
	for _, sc := range c.shards {
		if err := sc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
