// Integration tests for the sharded tier. They live in an external test
// package because the trainer (repro/internal/trainsim) imports the policy
// layer, which imports cluster — the degradation test drives a real trainer
// over a real cluster, so the import has to point this way.
package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/pipeline"
	"repro/internal/storage"
	"repro/internal/trainsim"
	"repro/internal/wire"
)

func testStore(t testing.TB, n int) *storage.Store {
	t.Helper()
	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: "cluster-test", N: n, Seed: 7, MinDim: 32, MaxDim: 96,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.FromImageSet(set)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testPipe() *pipeline.Pipeline {
	return pipeline.Standard(pipeline.StandardOptions{CropSize: 24, FlipP: -1})
}

func launch(t testing.TB, store *storage.Store, shards, cores int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Launch(cluster.Config{
		Shards:        shards,
		Store:         store,
		Pipeline:      testPipe(),
		CoresPerShard: cores,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func shardedClient(t testing.TB, c *cluster.Cluster, degraded bool) *cluster.ShardedClient {
	t.Helper()
	sc, err := c.NewShardedClient(storage.ClientOptions{JobID: 42}, 2, time.Millisecond, degraded)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	return sc
}

// TestShardedFetchBatch fans a batch across every shard and checks the
// results come back in input order with the exact stored bytes (split 0 ships
// the raw object, so the payload is directly comparable).
func TestShardedFetchBatch(t *testing.T) {
	const n = 60
	store := testStore(t, n)
	c := launch(t, store, 3, 1)
	sc := shardedClient(t, c, false)

	if sc.NumSamples() != n {
		t.Fatalf("NumSamples = %d, want %d", sc.NumSamples(), n)
	}

	samples := make([]uint32, n)
	splits := make([]int, n)
	for i := range samples {
		samples[i] = uint32(n - 1 - i) // reversed, so order preservation is visible
	}
	res, err := sc.FetchBatch(context.Background(), samples, splits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != n {
		t.Fatalf("got %d results for %d samples", len(res), n)
	}
	for i, r := range res {
		if r.Sample != samples[i] {
			t.Fatalf("result %d is sample %d, want %d (order not preserved)", i, r.Sample, samples[i])
		}
		if r.Status != wire.FetchOK || r.Err != nil {
			t.Fatalf("sample %d: status %v err %v", r.Sample, r.Status, r.Err)
		}
		want, err := store.Get(samples[i])
		if err != nil {
			t.Fatal(err)
		}
		if r.Artifact.Kind != pipeline.KindRaw || !bytes.Equal(r.Artifact.Raw, want) {
			t.Fatalf("sample %d: wrong payload back", r.Sample)
		}
	}

	// Every shard served its partition — no shard sat idle.
	for s, ctr := range c.Counters() {
		if got := ctr.SamplesServed.Load(); got == 0 {
			t.Errorf("shard %d served 0 samples", s)
		}
	}
}

// TestShardedFetchOffloaded checks a non-zero split round-trips through a
// shard's executor: the artifact comes back preprocessed, not raw.
func TestShardedFetchOffloaded(t *testing.T) {
	store := testStore(t, 12)
	c := launch(t, store, 2, 1)
	sc := shardedClient(t, c, false)

	res, err := sc.Fetch(context.Background(), 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != wire.FetchOK || res.Split != 1 || res.Artifact.Kind == pipeline.KindRaw {
		t.Fatalf("offloaded fetch: status %v split %d kind %v", res.Status, res.Split, res.Artifact.Kind)
	}
}

// fakeShard satisfies ShardClient with canned answers — just enough to probe
// NewShardedClient's validation.
type fakeShard struct{ n int }

func (f *fakeShard) Fetch(context.Context, uint32, int, uint64) (storage.FetchResult, error) {
	return storage.FetchResult{}, errors.New("fake")
}
func (f *fakeShard) FetchBatch(context.Context, []uint32, []int, uint64) ([]storage.FetchResult, error) {
	return nil, errors.New("fake")
}
func (f *fakeShard) Stats(context.Context) (wire.StatsResp, error) { return wire.StatsResp{}, nil }
func (f *fakeShard) NumSamples() int                               { return f.n }
func (f *fakeShard) Close() error                                  { return nil }

func TestNewShardedClientValidation(t *testing.T) {
	m, err := cluster.NewShardMap(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.NewShardedClient(nil, []cluster.ShardClient{&fakeShard{n: 4}, &fakeShard{n: 4}}, false); err == nil {
		t.Error("accepted nil shard map")
	}
	if _, err := cluster.NewShardedClient(m, []cluster.ShardClient{&fakeShard{n: 4}}, false); err == nil {
		t.Error("accepted 1 session for 2 shards")
	}
	if _, err := cluster.NewShardedClient(m, []cluster.ShardClient{&fakeShard{n: 4}, nil}, false); err == nil {
		t.Error("accepted nil session")
	}
	if _, err := cluster.NewShardedClient(m, []cluster.ShardClient{&fakeShard{n: 4}, &fakeShard{n: 5}}, false); err == nil {
		t.Error("accepted shards disagreeing on dataset size")
	}
	if _, err := cluster.NewShardedClient(m, []cluster.ShardClient{&fakeShard{n: 4}, &fakeShard{n: 4}}, false); err != nil {
		t.Errorf("rejected a consistent cluster: %v", err)
	}
}

func TestShardedBatchValidation(t *testing.T) {
	store := testStore(t, 8)
	c := launch(t, store, 2, 0)
	sc := shardedClient(t, c, false)
	ctx := context.Background()
	if _, err := sc.FetchBatch(ctx, nil, nil, 1); err == nil {
		t.Error("accepted empty batch")
	}
	if _, err := sc.FetchBatch(ctx, []uint32{1, 2}, []int{0}, 1); err == nil {
		t.Error("accepted mismatched samples/splits")
	}
	big := make([]uint32, wire.MaxBatchItems+1)
	if _, err := sc.FetchBatch(ctx, big, make([]int, len(big)), 1); err == nil {
		t.Error("accepted oversized batch")
	}
}

// TestStatsAggregation checks Stats sums across shards and ShardStats
// breaks the same numbers out per shard.
func TestStatsAggregation(t *testing.T) {
	const n = 40
	store := testStore(t, n)
	c := launch(t, store, 4, 0)
	sc := shardedClient(t, c, false)
	ctx := context.Background()

	samples := make([]uint32, n)
	for i := range samples {
		samples[i] = uint32(i)
	}
	if _, err := sc.FetchBatch(ctx, samples, make([]int, n), 1); err != nil {
		t.Fatal(err)
	}

	agg, err := sc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if agg.SamplesServed != uint64(n) {
		t.Errorf("aggregate SamplesServed = %d, want %d", agg.SamplesServed, n)
	}
	if agg.BytesSent < uint64(store.TotalBytes()) {
		t.Errorf("aggregate BytesSent = %d < %d payload bytes shipped", agg.BytesSent, store.TotalBytes())
	}
	var served, sent uint64
	for _, ss := range sc.ShardStats(ctx) {
		if ss.Err != nil {
			t.Fatalf("shard %d stats: %v", ss.Shard, ss.Err)
		}
		if ss.Stats.SamplesServed == 0 {
			t.Errorf("shard %d reports 0 samples served", ss.Shard)
		}
		served += ss.Stats.SamplesServed
		sent += ss.Stats.BytesSent
	}
	if served != agg.SamplesServed {
		t.Errorf("per-shard served sum %d disagrees with aggregate %d", served, agg.SamplesServed)
	}
	// The per-shard snapshots were taken one RPC round later, so they may
	// additionally cover the first round's stats frames — never less.
	if sent < agg.BytesSent || sent > agg.BytesSent+4096 {
		t.Errorf("per-shard bytes sum %d vs aggregate %d (want within one stats round)", sent, agg.BytesSent)
	}
}

// TestKillShardDegradedBatch: with DegradedMode on, a dead shard fails only
// its own items — every healthy shard's samples still arrive.
func TestKillShardDegradedBatch(t *testing.T) {
	const n = 48
	store := testStore(t, n)
	c := launch(t, store, 3, 0)
	// Both clients dial while the cluster is healthy — the kill happens
	// mid-session, as a real storage-node crash would.
	sc := shardedClient(t, c, true)
	strict := shardedClient(t, c, false)

	const dead = 1
	if err := c.KillShard(dead); err != nil {
		t.Fatal(err)
	}

	samples := make([]uint32, n)
	for i := range samples {
		samples[i] = uint32(i)
	}
	res, err := sc.FetchBatch(context.Background(), samples, make([]int, n), 1)
	if err != nil {
		t.Fatalf("degraded FetchBatch: %v", err)
	}
	for i, r := range res {
		onDead := c.ShardMap().ShardOf(samples[i]) == dead
		if onDead {
			if r.Err == nil || !errors.Is(r.Err, cluster.ErrShardDown) {
				t.Fatalf("sample %d on dead shard: err %v, want ErrShardDown", samples[i], r.Err)
			}
			if r.Status != wire.FetchFailed {
				t.Fatalf("sample %d on dead shard: status %v", samples[i], r.Status)
			}
		} else if r.Err != nil || r.Status != wire.FetchOK {
			t.Fatalf("sample %d on healthy shard failed: %v", samples[i], r.Err)
		}
	}

	// Outside DegradedMode the same batch fails as a whole.
	if _, err := strict.FetchBatch(context.Background(), samples, make([]int, n), 1); !errors.Is(err, cluster.ErrShardDown) {
		t.Fatalf("strict FetchBatch err = %v, want ErrShardDown", err)
	}

	// Degraded Stats skips the dead shard instead of erroring.
	if _, err := sc.Stats(context.Background()); err != nil {
		t.Fatalf("degraded Stats: %v", err)
	}
	if _, err := strict.Stats(context.Background()); !errors.Is(err, cluster.ErrShardDown) {
		t.Fatalf("strict Stats err = %v, want ErrShardDown", err)
	}
}

// TestTrainerSurvivesDeadShard is the acceptance scenario: kill one shard of
// three, and a trainer in DegradedMode still completes the epoch, reporting
// exactly the dead shard's samples as failures. The same epoch without
// DegradedMode aborts.
func TestTrainerSurvivesDeadShard(t *testing.T) {
	const n = 60
	store := testStore(t, n)
	c := launch(t, store, 3, 0)

	const dead = 2
	lost := len(c.ShardMap().Owned(n, dead))
	if lost == 0 || lost == n {
		t.Fatalf("degenerate placement: shard %d owns %d of %d", dead, lost, n)
	}

	config := func(degraded bool) trainsim.Config {
		return trainsim.Config{
			DialClient: func() (trainsim.StorageClient, error) {
				return c.NewShardedClient(storage.ClientOptions{JobID: 9}, 2, time.Millisecond, degraded)
			},
			Workers:        2,
			Pipeline:       testPipe(),
			GPU:            gpu.AlexNet,
			BatchSize:      8,
			JobID:          9,
			FetchBatchSize: 8,
			DegradedMode:   degraded,
		}
	}

	// Both trainers dial while every shard is up; the crash happens before
	// their epochs start.
	tr, err := trainsim.New(config(true))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	strict, err := trainsim.New(config(false))
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()

	if err := c.KillShard(dead); err != nil {
		t.Fatal(err)
	}

	rep, err := tr.RunEpoch(1, nil, nil)
	if err != nil {
		t.Fatalf("degraded epoch: %v", err)
	}
	if rep.Failed != lost {
		t.Errorf("Failed = %d, want the dead shard's %d samples", rep.Failed, lost)
	}
	if rep.Samples != n-lost {
		t.Errorf("Samples = %d, want %d", rep.Samples, n-lost)
	}

	if _, err := strict.RunEpoch(1, nil, nil); err == nil {
		t.Error("non-degraded epoch completed despite a dead shard")
	}
}

// TestLaunchValidation covers Launch's refusals.
func TestLaunchValidation(t *testing.T) {
	store := testStore(t, 8)
	if _, err := cluster.Launch(cluster.Config{Shards: 1, Pipeline: testPipe()}); err == nil {
		t.Error("accepted nil store")
	}
	if _, err := cluster.Launch(cluster.Config{Shards: 1, Store: store}); err == nil {
		t.Error("accepted nil pipeline")
	}
	if _, err := cluster.Launch(cluster.Config{Shards: 0, Store: store, Pipeline: testPipe()}); err == nil {
		t.Error("accepted 0 shards")
	}
	if _, err := cluster.Launch(cluster.Config{Shards: 9, Store: store, Pipeline: testPipe()}); err == nil {
		t.Error("accepted more shards than samples")
	}
}

// TestLaunchSharedAdmission threads one admission controller through every
// shard: normal traffic is admitted and counted once per fetch, and with the
// budget pinned full from outside, fetches to ANY shard shed with the typed
// busy error — the gate is global, not per-shard.
func TestLaunchSharedAdmission(t *testing.T) {
	const n = 60
	store := testStore(t, n)
	adm, err := storage.NewAdmissionController(storage.AdmissionConfig{
		MaxInFlightBytes:  store.TotalBytes(),
		MaxQueuePerTenant: 1,
		RetryAfter:        20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.Launch(cluster.Config{
		Shards:        3,
		Store:         store,
		Pipeline:      testPipe(),
		CoresPerShard: 1,
		Admission:     adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for s := 0; s < c.Shards(); s++ {
		if c.Server(s).Admission() != adm {
			t.Fatalf("shard %d does not share the controller", s)
		}
	}

	sc := shardedClient(t, c, false)
	samples := make([]uint32, n)
	for i := range samples {
		samples[i] = uint32(i)
	}
	if _, err := sc.FetchBatch(context.Background(), samples, make([]int, n), 1); err != nil {
		t.Fatal(err)
	}
	// One batch Acquire per shard the fan-out touched.
	if got := adm.Stats().Admitted; got != 3 {
		t.Fatalf("Admitted = %d, want 3 (one per shard)", got)
	}

	// Pin the budget: the next fetch queues (bound 1) or sheds, on whichever
	// shard it lands. Retries are budgeted so the typed error surfaces.
	release, err := adm.Acquire(99, store.TotalBytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sc.Fetch(context.Background(), 0, 0, 1)
		done <- err
	}()
	// The fetch is parked in the admission queue, not failed.
	deadline := time.Now().Add(2 * time.Second)
	for adm.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fetch never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("queued fetch after release: %v", err)
	}
}
