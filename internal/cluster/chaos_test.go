package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/storage"
)

// launchChaos starts a cluster with a fault plan wired through Launch.
func launchChaos(t testing.TB, store *storage.Store, shards int, plan *chaos.Plan) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Launch(cluster.Config{
		Shards:        shards,
		Store:         store,
		Pipeline:      testPipe(),
		CoresPerShard: 1,
		Chaos:         plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestChaosCorruptionRetriedToCorrectBytes: a shard that corrupts its
// traffic must never produce wrong bytes — the checksum turns every flip
// into a retry, and the retried fetch returns exactly the stored object.
func TestChaosCorruptionRetriedToCorrectBytes(t *testing.T) {
	const n = 30
	store := testStore(t, n)
	// Corrupt aggressively on every shard so hits are certain.
	plan := &chaos.Plan{Seed: 99, Shards: []chaos.Profile{
		{CorruptEvery: 8 << 10}, {CorruptEvery: 8 << 10},
	}}
	c := launchChaos(t, store, 2, plan)
	sc, err := c.NewShardedClientWithPolicy(storage.ClientOptions{JobID: 7}, storage.RetryPolicy{
		Attempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Multiplier: 2,
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	for k := 0; k < n; k++ {
		res, err := sc.Fetch(context.Background(), uint32(k), 0, 1)
		if err != nil {
			t.Fatalf("fetch %d under corruption: %v", k, err)
		}
		want, err := store.Get(uint32(k))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Artifact.Raw, want) {
			t.Fatalf("sample %d: corrupted bytes leaked through the checksum", k)
		}
	}
	injected := c.ChaosStats(0).Corrupts + c.ChaosStats(1).Corrupts
	if injected == 0 {
		t.Fatal("plan injected no corruptions — the test exercised nothing")
	}
}

// TestPartitionShardDegradedAndHeal: a partitioned shard degrades exactly
// its own keys (ErrShardDown on the result, nil call error in degraded
// mode), other shards stay clean, and healing restores full service.
func TestPartitionShardDegradedAndHeal(t *testing.T) {
	const n = 40
	store := testStore(t, n)
	plan := &chaos.Plan{Seed: 1} // no per-conn faults; just partition support
	c := launchChaos(t, store, 2, plan)
	sc, err := c.NewShardedClientWithPolicy(storage.ClientOptions{JobID: 7}, storage.RetryPolicy{
		Attempts: 2, BaseBackoff: -1, Jitter: -1,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	owned0 := c.ShardMap().Owned(n, 0)
	owned1 := c.ShardMap().Owned(n, 1)

	if err := c.PartitionShard(0, true); err != nil {
		t.Fatal(err)
	}
	// A single fetch has no healthy remainder to salvage: the call errors,
	// typed ErrShardDown and mirrored into the result.
	res, err := sc.Fetch(context.Background(), owned0[0], 0, 1)
	if !errors.Is(err, cluster.ErrShardDown) {
		t.Fatalf("partitioned shard's fetch err = %v, want ErrShardDown", err)
	}
	if !errors.Is(res.Err, cluster.ErrShardDown) {
		t.Fatalf("partitioned shard's result err = %v, want ErrShardDown", res.Err)
	}
	// A batch call in degraded mode salvages the healthy shard: nil call
	// error, ErrShardDown only on the partitioned shard's items.
	batch := []uint32{owned0[0], owned1[0], owned1[1]}
	bres, err := sc.FetchBatch(context.Background(), batch, []int{0, 0, 0}, 1)
	if err != nil {
		t.Fatalf("degraded batch should not fail the call: %v", err)
	}
	if !errors.Is(bres[0].Err, cluster.ErrShardDown) {
		t.Fatalf("partitioned item err = %v, want ErrShardDown", bres[0].Err)
	}
	if bres[1].Err != nil || bres[2].Err != nil {
		t.Fatalf("healthy items failed: %v / %v", bres[1].Err, bres[2].Err)
	}
	for _, id := range owned1[:3] {
		if res, err := sc.Fetch(context.Background(), id, 0, 1); err != nil || res.Err != nil {
			t.Fatalf("healthy shard's key %d failed under the other's partition: %v / %v", id, err, res.Err)
		}
	}

	if err := c.PartitionShard(0, false); err != nil {
		t.Fatal(err)
	}
	if res, err := sc.Fetch(context.Background(), owned0[0], 0, 1); err != nil || res.Err != nil {
		t.Fatalf("fetch after heal: %v / %v", err, res.Err)
	}
}

// TestPartitionRequiresChaos: partitioning is only available when the
// cluster was launched with a plan.
func TestPartitionRequiresChaos(t *testing.T) {
	c := launch(t, testStore(t, 8), 2, 1)
	if err := c.PartitionShard(0, true); err == nil {
		t.Fatal("partition without a chaos plan should error")
	}
	if err := c.PartitionShard(-1, true); err == nil {
		t.Fatal("out-of-range shard should error")
	}
	if got := c.ChaosStats(0); got != (chaos.StatsSnapshot{}) {
		t.Fatalf("chaos-free cluster reported stats %+v", got)
	}
}

// TestChaosSlowShardStillCorrect: a shard with scheduled delays and stalls
// returns correct bytes late rather than wrong bytes fast.
func TestChaosSlowShardStillCorrect(t *testing.T) {
	const n = 20
	store := testStore(t, n)
	plan := &chaos.Plan{Seed: 5, Shards: []chaos.Profile{{
		DelayEvery: 4 << 10, Delay: 200 * time.Microsecond,
		StallEvery: 64 << 10, Stall: time.Millisecond,
	}}}
	c := launchChaos(t, store, 2, plan)
	sc, err := c.NewShardedClientWithPolicy(storage.ClientOptions{JobID: 7}, storage.RetryPolicy{}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	for k := 0; k < n; k++ {
		res, err := sc.Fetch(context.Background(), uint32(k), 0, 1)
		if err != nil {
			t.Fatalf("fetch %d on slow shard: %v", k, err)
		}
		want, _ := store.Get(uint32(k))
		if !bytes.Equal(res.Artifact.Raw, want) {
			t.Fatalf("sample %d bytes wrong under delays", k)
		}
	}
	if c.ChaosStats(0).Delays == 0 {
		t.Fatal("slow-shard profile injected no delays")
	}
}
