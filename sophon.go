// Package sophon is the public API of this SOPHON reproduction — a
// selective preprocessing-offloading framework for reducing data traffic in
// deep-learning training (HotStorage '24).
//
// The package exposes two tiers.
//
// The live tier runs the real system: StartCluster boots an in-process
// storage server (in-memory object store, near-storage preprocessing
// executor, optional token-bucket bandwidth cap) on a loopback TCP socket,
// and NewTrainer attaches a training client whose loader workers fetch
// samples with per-sample offload directives, finish preprocessing locally,
// and feed a simulated GPU. Profile runs the paper's two-stage profiler and
// Decide turns its output into an offload plan.
//
// The model tier replays profiled traces through a discrete-event simulator
// at full paper scale: GenerateTrace draws datasets matching the paper's
// OpenImages/ImageNet statistics, SimulateEpoch evaluates a plan, and
// Reproduce regenerates every table and figure in the evaluation.
package sophon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/profiler"
	"repro/internal/storage"
	"repro/internal/trainsim"
)

// Re-exported core types. These aliases make the internal packages' types
// part of the public surface without duplicating them.
type (
	// Env describes the training environment's resources.
	Env = policy.Env
	// Plan assigns each sample its offloaded prefix length.
	Plan = policy.Plan
	// Policy produces plans; implementations include the paper's
	// baselines and the SOPHON decision engine.
	Policy = policy.Policy
	// EpochModel holds the paper's four epoch cost metrics.
	EpochModel = policy.EpochModel
	// Trace is a profiled dataset: per-sample stage sizes and op times.
	Trace = dataset.Trace
	// Profile statistically describes a dataset.
	Profile = dataset.Profile
	// Decision is the outcome of a full SOPHON planning pass.
	Decision = core.Decision
	// Stage1Result holds the stage-1 profiler's throughput probes.
	Stage1Result = profiler.Stage1Result
	// EpochReport summarizes a live training epoch.
	EpochReport = trainsim.EpochReport
	// SimResult summarizes a simulated epoch.
	SimResult = engine.Result
	// GPUModel is a training model's speed profile.
	GPUModel = gpu.Model
	// ExperimentOptions scales the paper-reproduction experiments.
	ExperimentOptions = eval.Options

	// PlanVersion is the control plane's monotonic plan identity.
	PlanVersion = policy.PlanVersion
	// PlanSnapshot is an immutable versioned plan plus the environment it
	// was computed against.
	PlanSnapshot = policy.PlanSnapshot
	// PlanProvider is the consumer-side view of the adaptive control plane.
	PlanProvider = policy.PlanProvider
	// DriftConfig tunes the profiler's drift detection (EWMA smoothing,
	// relative-change threshold, hysteresis).
	DriftConfig = profiler.DriftConfig
	// ReplanEvent is one control-plane transition in the replan history.
	ReplanEvent = core.ReplanEvent
	// EpochSample is one epoch's measured environment, fed to the
	// controller at epoch boundaries.
	EpochSample = profiler.EpochSample
	// Drift reports one metric that moved past its gate.
	Drift = profiler.Drift
	// Controller is the adaptive control plane: telemetry in, versioned
	// plans out.
	Controller = core.Controller
	// ControllerConfig configures NewController.
	ControllerConfig = core.ControllerConfig
	// AdaptiveSimConfig configures RunAdaptiveSim at the model tier.
	AdaptiveSimConfig = core.SimConfig
	// AdaptiveSimResult is a full adaptive (or static) simulated run.
	AdaptiveSimResult = core.SimResult
)

// NewController builds the adaptive control plane over a profiled trace: it
// computes the initial plan (version 1) and replans when observed telemetry
// drifts from the environment the live plan assumes.
func NewController(cfg ControllerConfig) (*Controller, error) {
	return core.NewController(cfg)
}

// RunAdaptiveSim drives the controller loop through the discrete-event
// engine: each epoch simulates the current plan against that epoch's true
// environment and feeds the measured outcome back to the controller. Run it
// twice — Adaptive true and false — over the same environment schedule to
// compare adaptive against static replanning.
func RunAdaptiveSim(cfg AdaptiveSimConfig) (AdaptiveSimResult, error) {
	return core.RunAdaptiveSim(cfg)
}

// GPU model profiles.
var (
	AlexNet  = gpu.AlexNet
	ResNet18 = gpu.ResNet18
	ResNet50 = gpu.ResNet50
)

// Mbps converts megabits/second to the bytes/second used by Env.Bandwidth.
func Mbps(v float64) float64 { return netsim.Mbps(v) }

// Policies.
func NewSophonPolicy() Policy { return policy.NewSophon() }
func NoOffPolicy() Policy     { return policy.NoOff{} }
func AllOffPolicy() Policy    { return policy.AllOff{} }
func ResizeOffPolicy() Policy { return policy.ResizeOff{} }
func FastFlowPolicy() Policy  { return policy.FastFlow{} }

// AllPolicies returns every policy in the paper's figure order.
func AllPolicies() []Policy { return policy.All() }

// OpenImagesProfile returns the paper's 12 GB OpenImages subset profile
// (40 000 samples); pass n > 0 to scale it down.
func OpenImagesProfile(n int) Profile {
	p := dataset.OpenImages12G()
	if n > 0 {
		p = p.ScaledTo(n)
	}
	return p
}

// ImageNetProfile returns the paper's 11 GB ImageNet subset profile
// (91 000 samples); pass n > 0 to scale it down.
func ImageNetProfile(n int) Profile {
	p := dataset.ImageNet11G()
	if n > 0 {
		p = p.ScaledTo(n)
	}
	return p
}

// GenerateTrace draws a deterministic profiled dataset from a profile.
func GenerateTrace(p Profile, seed uint64) (*Trace, error) {
	return dataset.GenerateTrace(p, seed)
}

// Decide runs the SOPHON framework (stage-1 gate + decision engine) over a
// profiled trace.
func Decide(tr *Trace, env Env) (Decision, error) {
	return core.New().Decide(tr, env)
}

// SimulateEpoch replays one epoch of a plan through the discrete-event
// engine with the default batch size.
func SimulateEpoch(tr *Trace, plan *Plan, env Env) (SimResult, error) {
	return engine.Run(engine.Config{Trace: tr, Plan: plan, Env: env})
}

// SimulatePolicy plans with p and simulates the resulting epoch.
func SimulatePolicy(p Policy, tr *Trace, env Env) (SimResult, *Plan, error) {
	return engine.RunPolicy(p, tr, env, 0)
}

// Reproduce regenerates every table and figure from the paper's evaluation,
// writing the report to w. Zero-valued options mean paper scale.
func Reproduce(opts ExperimentOptions, w io.Writer) error {
	return eval.RunAll(opts, w)
}

// ClusterConfig configures an in-process two-node testbed.
type ClusterConfig struct {
	// DatasetName labels the synthetic dataset; empty means "synthetic".
	DatasetName string
	// NumSamples is the dataset size (required).
	NumSamples int
	// Seed makes the dataset deterministic.
	Seed uint64
	// MinDim/MaxDim bound image sides; zero means 80–480 px.
	MinDim, MaxDim int
	// CropSize is the pipeline's RandomResizedCrop output; zero means 224.
	CropSize int
	// StorageCores is the storage node's preprocessing core budget.
	StorageCores int
	// StorageSlowdown models weaker storage CPUs; zero means 1.
	StorageSlowdown float64
	// BandwidthMbps caps the storage→compute link; zero means unshaped.
	BandwidthMbps float64
	// ChaosConnBudget, when positive, kills every accepted connection
	// after that many transferred bytes — fault injection for exercising
	// client retry (see TrainerOptions.RetryAttempts).
	ChaosConnBudget int64
}

// Cluster is a running storage server plus the facts needed to train
// against it.
type Cluster struct {
	server   *storage.Server
	listener net.Listener
	pipe     *pipeline.Pipeline
	set      *dataset.ImageSet
	addr     string
	bucket   *netsim.TokenBucket
}

// StartCluster materializes a synthetic dataset into an in-memory store and
// serves it on a loopback TCP listener (bandwidth-shaped when configured).
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.NumSamples <= 0 {
		return nil, errors.New("sophon: NumSamples must be positive")
	}
	if cfg.StorageSlowdown == 0 {
		cfg.StorageSlowdown = 1
	}
	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name:   cfg.DatasetName,
		N:      cfg.NumSamples,
		Seed:   cfg.Seed,
		MinDim: cfg.MinDim,
		MaxDim: cfg.MaxDim,
	})
	if err != nil {
		return nil, err
	}
	store, err := storage.FromImageSet(set)
	if err != nil {
		return nil, err
	}
	p := pipeline.Standard(pipeline.StandardOptions{CropSize: cfg.CropSize, FlipP: -1})
	srv, err := storage.NewServer(storage.ServerConfig{
		Store:    store,
		Pipeline: p,
		Cores:    cfg.StorageCores,
		Slowdown: cfg.StorageSlowdown,
	})
	if err != nil {
		return nil, err
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("sophon: listen: %w", err)
	}
	var l net.Listener = inner
	var bucket *netsim.TokenBucket
	if cfg.BandwidthMbps > 0 {
		bucket, err = netsim.NewTokenBucket(netsim.Mbps(cfg.BandwidthMbps), 256<<10, nil)
		if err != nil {
			inner.Close()
			return nil, err
		}
		l = netsim.ShapeListener(inner, bucket)
	}
	if cfg.ChaosConnBudget > 0 {
		l = chaosListener{Listener: l, budget: cfg.ChaosConnBudget}
	}
	go srv.Serve(l)
	return &Cluster{server: srv, listener: l, pipe: p, set: set, addr: inner.Addr().String(), bucket: bucket}, nil
}

// chaosListener wraps accepted connections with a byte-budget fault
// injector.
type chaosListener struct {
	net.Listener
	budget int64
}

func (l chaosListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return netsim.Flaky(conn, l.budget), nil
}

// Addr returns the server's TCP address.
func (c *Cluster) Addr() string { return c.addr }

// Pipeline returns the preprocessing pipeline both nodes run.
func (c *Cluster) Pipeline() *pipeline.Pipeline { return c.pipe }

// NumSamples returns the dataset size.
func (c *Cluster) NumSamples() int { return c.set.N() }

// Dial opens a storage client for the given training job.
func (c *Cluster) Dial(jobID uint64) (*storage.Client, error) {
	return storage.Dial(c.addr, jobID)
}

// SetBandwidth reshapes the storage→compute link to a new Mbps rate while
// the cluster is serving — the live equivalent of a network degradation.
// The cluster must have been started with a BandwidthMbps cap (an unshaped
// link has nothing to reshape).
func (c *Cluster) SetBandwidth(mbps float64) error {
	if c.bucket == nil {
		return errors.New("sophon: cluster started without bandwidth shaping")
	}
	return c.bucket.SetRate(netsim.Mbps(mbps))
}

// ServerPlanVersion returns the highest plan version the storage server has
// observed on the wire (0 until versioned traffic arrives).
func (c *Cluster) ServerPlanVersion() uint32 {
	return c.server.Counters().PlanVersion.Load()
}

// ServerCPUNanos returns the storage node's accumulated preprocessing CPU
// time in nanoseconds.
func (c *Cluster) ServerCPUNanos() uint64 {
	return c.server.Counters().CPUNanos.Load()
}

// serverCounters exposes the raw counters to the monitor integration.
func (c *Cluster) serverCounters() *storage.Counters { return c.server.Counters() }

// Close shuts the server down.
func (c *Cluster) Close() error { return c.server.Close() }

// TrainerOptions configures a live trainer attached to a cluster.
type TrainerOptions struct {
	// Workers is the loader parallelism; zero means 4.
	Workers int
	// ComputeCores bounds concurrent local preprocessing; zero = Workers.
	ComputeCores int
	// GPU selects the accelerator profile; the zero value means AlexNet.
	GPU GPUModel
	// BatchSize is the per-step batch; zero means 32.
	BatchSize int
	// JobID seeds augmentations.
	JobID uint64
	// Shuffle permutes the visit order per epoch.
	Shuffle bool
	// FetchBatchSize groups this many samples per storage round trip;
	// 0 or 1 means per-sample fetches.
	FetchBatchSize int
	// PrefetchWindow bounds concurrently in-flight fetch requests on the
	// shared storage session; zero means 2×Workers.
	PrefetchWindow int
	// RequestTimeout bounds each storage round trip; zero means the
	// client default (30s), negative disables the timeout.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrent requests the session admits; zero means
	// the client default (64).
	MaxInFlight int
	// RetryAttempts, when > 1, wraps the session with transparent
	// reconnect-and-retry (surviving flaky links).
	RetryAttempts int
	// RetryBackoff is the pause before each redial.
	RetryBackoff time.Duration
	// CacheBytes, when positive, puts a no-evict local raw-object cache
	// of that capacity in front of the storage client (shared across the
	// trainer's workers).
	CacheBytes int64
	// SharedCache, when non-nil, stacks the fleet's cross-job artifact
	// cache over the session: artifacts another tenant of the share group
	// already fetched are served from memory at zero wire bytes. JobID must
	// be the group's dataset share key (coordinated prep), and TenantName
	// labels this trainer in the cache's per-tenant accounting.
	SharedCache *SharedArtifactCache
	// TenantName is required with SharedCache.
	TenantName string
}

// Trainer is a live training client.
type Trainer struct {
	inner *trainsim.Trainer
	n     int
}

// NewTrainer dials the cluster and builds a trainer.
func (c *Cluster) NewTrainer(opts TrainerOptions) (*Trainer, error) {
	g := opts.GPU
	if !g.Valid() {
		g = gpu.AlexNet
	}
	var sharedCache cache.Cache
	if opts.CacheBytes > 0 {
		var err error
		sharedCache, err = cache.NewNoEvict(opts.CacheBytes)
		if err != nil {
			return nil, err
		}
	}
	dialSession := func() (*storage.Client, error) {
		return storage.DialWithOptions(c.addr, storage.ClientOptions{
			JobID:          opts.JobID,
			RequestTimeout: opts.RequestTimeout,
			MaxInFlight:    opts.MaxInFlight,
		})
	}
	dial := func() (trainsim.StorageClient, error) {
		var client trainsim.StorageClient
		if opts.RetryAttempts > 1 {
			rc, err := storage.NewReconnecting(dialSession, opts.RetryAttempts, opts.RetryBackoff, nil)
			if err != nil {
				return nil, err
			}
			client = rc
		} else {
			sc, err := dialSession()
			if err != nil {
				return nil, err
			}
			client = sc
		}
		if sharedCache != nil {
			client = cachingClient{inner: client, cache: sharedCache}
		}
		if opts.SharedCache != nil {
			tf, err := cache.NewTenantFetcher(client, opts.SharedCache, opts.TenantName, opts.JobID)
			if err != nil {
				client.Close()
				return nil, err
			}
			client = tf
		}
		return client, nil
	}
	inner, err := trainsim.New(trainsim.Config{
		DialClient:     dial,
		Workers:        opts.Workers,
		ComputeCores:   opts.ComputeCores,
		Pipeline:       c.pipe,
		GPU:            g,
		BatchSize:      opts.BatchSize,
		JobID:          opts.JobID,
		Shuffle:        opts.Shuffle,
		FetchBatchSize: opts.FetchBatchSize,
		PrefetchWindow: opts.PrefetchWindow,
	})
	if err != nil {
		return nil, err
	}
	return &Trainer{inner: inner, n: inner.N()}, nil
}

// cachingClient adapts cache.FetchingCache semantics over any
// StorageClient (the cache package wraps the concrete *storage.Client, so
// compose manually here to also cover retry-wrapped clients).
type cachingClient struct {
	inner trainsim.StorageClient
	cache cache.Cache
}

func (c cachingClient) Fetch(ctx context.Context, sample uint32, split int, epoch uint64) (storage.FetchResult, error) {
	if split == 0 {
		if data, ok := c.cache.Get(sample); ok {
			return storage.FetchResult{Sample: sample, Artifact: pipeline.RawArtifact(data)}, nil
		}
	}
	res, err := c.inner.Fetch(ctx, sample, split, epoch)
	if err != nil {
		return storage.FetchResult{}, err
	}
	if split == 0 && res.Artifact.Kind == pipeline.KindRaw {
		c.cache.Put(sample, res.Artifact.Raw)
	}
	return res, nil
}

func (c cachingClient) FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error) {
	out := make([]storage.FetchResult, len(samples))
	var missS []uint32
	var missSp []int
	var missI []int
	for i := range samples {
		if splits[i] == 0 {
			if data, ok := c.cache.Get(samples[i]); ok {
				out[i] = storage.FetchResult{Sample: samples[i], Artifact: pipeline.RawArtifact(data)}
				continue
			}
		}
		missS = append(missS, samples[i])
		missSp = append(missSp, splits[i])
		missI = append(missI, i)
	}
	if len(missS) > 0 {
		fetched, err := c.inner.FetchBatch(ctx, missS, missSp, epoch)
		if err != nil {
			return nil, err
		}
		for k, res := range fetched {
			out[missI[k]] = res
			if res.Err == nil && missSp[k] == 0 && res.Artifact.Kind == pipeline.KindRaw {
				c.cache.Put(missS[k], res.Artifact.Raw)
			}
		}
	}
	return out, nil
}

func (c cachingClient) NumSamples() int { return c.inner.NumSamples() }
func (c cachingClient) Close() error    { return c.inner.Close() }

// SetPlanVersion forwards the control plane's stamp through the cache layer.
func (c cachingClient) SetPlanVersion(v uint32) {
	if pv, ok := c.inner.(storage.PlanVersioner); ok {
		pv.SetPlanVersion(v)
	}
}

// N returns the dataset size the server reported.
func (t *Trainer) N() int { return t.n }

// Close releases the trainer's connections.
func (t *Trainer) Close() { t.inner.Close() }

// TrainEpoch runs one epoch under plan (nil means no offloading).
func (t *Trainer) TrainEpoch(epoch uint64, plan *Plan) (EpochReport, error) {
	return t.inner.RunEpoch(epoch, plan, nil)
}

// TrainEpochSnapshot runs one epoch under a versioned plan snapshot from the
// control plane: every fetch is stamped with the snapshot's version and the
// report records it.
func (t *Trainer) TrainEpochSnapshot(epoch uint64, snap *PlanSnapshot) (EpochReport, error) {
	return t.inner.RunEpochSnapshot(epoch, snap, nil)
}

// MeasureBandwidth probes the storage link's current throughput in
// bytes/second with n serial raw fetches (the adaptive loop's between-epoch
// re-profiling).
func (t *Trainer) MeasureBandwidth(n int) (float64, error) {
	return t.inner.MeasureBandwidth(n)
}

// Profile runs the paper's two-stage profiler: stage 1 measures GPU/IO/CPU
// throughput over probeBatches batches; stage 2 is the first training epoch
// executed without offloading while collecting per-sample metrics. It
// returns the measured trace, the stage-1 verdict, and the epoch-1 report.
func (t *Trainer) Profile(probeBatches int) (*Trace, Stage1Result, EpochReport, error) {
	stage1, err := profiler.RunStage1(t.inner.Stage1Probes(), probeBatches)
	if err != nil {
		return nil, Stage1Result{}, EpochReport{}, err
	}
	collector, err := profiler.NewCollector(t.n)
	if err != nil {
		return nil, Stage1Result{}, EpochReport{}, err
	}
	report, err := t.inner.RunEpoch(1, nil, collector)
	if err != nil {
		return nil, Stage1Result{}, EpochReport{}, err
	}
	tr, err := collector.Trace("measured")
	if err != nil {
		return nil, Stage1Result{}, EpochReport{}, err
	}
	return tr, stage1, report, nil
}

// DecideMeasured combines a measured trace and stage-1 verdict into an
// offload plan via the SOPHON framework.
func DecideMeasured(tr *Trace, env Env, stage1 Stage1Result) (Decision, error) {
	return core.New().DecideWithStage1(tr, env, stage1)
}

// AutoTrain runs the complete Figure 2 flow: stage-1 probes, a profiling
// first epoch, the SOPHON decision against env (with the measured stage-1
// verdict as the gate), then the remaining epochs under the plan. It
// returns the decision and one report per epoch (including the profiling
// epoch).
func (t *Trainer) AutoTrain(epochs int, env Env, probeBatches int) (Decision, []EpochReport, error) {
	if epochs < 1 {
		return Decision{}, nil, errors.New("sophon: epochs must be >= 1")
	}
	trace, stage1, first, err := t.Profile(probeBatches)
	if err != nil {
		return Decision{}, nil, err
	}
	reports := []EpochReport{first}
	decision, err := DecideMeasured(trace, env, stage1)
	if err != nil {
		return Decision{}, nil, err
	}
	for e := 2; e <= epochs; e++ {
		rep, err := t.TrainEpoch(uint64(e), decision.Plan)
		if err != nil {
			return Decision{}, nil, err
		}
		reports = append(reports, rep)
	}
	return decision, reports, nil
}

// AdaptiveTrainResult is the outcome of an adaptive live training run.
type AdaptiveTrainResult struct {
	// Reports holds one entry per epoch, the profiling epoch included; each
	// records the plan version it ran under.
	Reports []EpochReport
	// History is the controller's replan history, the "initial" plan first.
	History []ReplanEvent
	// Final is the planning outcome in force when training ended.
	Final Decision
}

// AutoTrainAdaptive is AutoTrain with the control plane closed into a loop:
// after the profiling epoch seeds the plan, every later epoch runs under the
// controller's current snapshot, a serial fetch probe re-measures the link,
// and the controller replans at the next epoch boundary when the measurement
// drifts past the configured gates. The zero DriftConfig uses the default
// thresholds. Bandwidth probing fetches raw samples, so runs with a local
// cache attached (TrainerOptions.CacheBytes) will measure the cache, not
// the link.
func (t *Trainer) AutoTrainAdaptive(epochs int, env Env, probeBatches int, drift DriftConfig) (AdaptiveTrainResult, error) {
	if epochs < 1 {
		return AdaptiveTrainResult{}, errors.New("sophon: epochs must be >= 1")
	}
	trace, _, first, err := t.Profile(probeBatches)
	if err != nil {
		return AdaptiveTrainResult{}, err
	}
	ctrl, err := core.NewController(core.ControllerConfig{Trace: trace, Env: env, Drift: drift})
	if err != nil {
		return AdaptiveTrainResult{}, err
	}
	// The probe covers a few batches of samples: enough wire traffic to
	// amortize the shaper's burst allowance without rereading the dataset.
	probeSamples := 4 * 32
	if probeSamples > t.n {
		probeSamples = t.n
	}
	reports := []EpochReport{first}
	for e := 2; e <= epochs; e++ {
		snap := ctrl.Current()
		rep, err := t.inner.RunEpochSnapshot(uint64(e), snap, nil)
		if err != nil {
			return AdaptiveTrainResult{}, err
		}
		reports = append(reports, rep)
		bw, err := t.MeasureBandwidth(probeSamples)
		if err != nil {
			return AdaptiveTrainResult{}, err
		}
		if _, _, err := ctrl.ObserveEpoch(profiler.EpochSample{Epoch: uint64(e), Bandwidth: bw}); err != nil {
			return AdaptiveTrainResult{}, err
		}
	}
	return AdaptiveTrainResult{Reports: reports, History: ctrl.History(), Final: ctrl.Decision()}, nil
}
