//go:build race

package sophon

// raceEnabled reports whether this test binary runs under the race
// detector, whose ~20× CPU slowdown skews the profiler's measured
// throughputs (the network is unaffected, so the apparent bottleneck moves).
const raceEnabled = true
