package sophon

import (
	"time"

	"repro/internal/cache"
	"repro/internal/compressor"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/storage"
)

// This file exposes the paper's future-work extensions: selective transfer
// compression and multi-tenant storage-CPU scheduling.

// CompressionModel estimates per-artifact-kind compression ratios and CPU
// costs.
type CompressionModel = compressor.Model

// CompressionSelection flags which samples compress their transfer.
type CompressionSelection = compressor.Selection

// DefaultCompressionModel returns ratios calibrated against the real
// DEFLATE path.
func DefaultCompressionModel() CompressionModel { return compressor.DefaultModel() }

// SelectCompression greedily flags samples whose transfer should be
// compressed on top of an offload plan, while the epoch stays
// network-bound.
func SelectCompression(tr *Trace, plan *Plan, env Env, m CompressionModel) (*CompressionSelection, error) {
	return compressor.Select(tr, plan, env, m)
}

// ApplyCompression folds a compression selection into a trace copy so the
// standard simulator and cost model account for it.
func ApplyCompression(tr *Trace, plan *Plan, sel *CompressionSelection, m CompressionModel) (*Trace, error) {
	return compressor.ApplyToTrace(tr, plan, sel, m)
}

// TenantJob is one training job competing for storage-node CPU cores.
type TenantJob = sched.Job

// CoreAllocation is a scheduler outcome.
type CoreAllocation = sched.Allocation

// AllocateCores distributes totalCores across jobs by marginal epoch-time
// gain, re-planning each job with the SOPHON engine at every grant.
func AllocateCores(jobs []TenantJob, totalCores int) (CoreAllocation, error) {
	return sched.Allocate(jobs, totalCores, nil)
}

// EvenSplitCores is the naive baseline allocator.
func EvenSplitCores(jobs []TenantJob, totalCores int) (CoreAllocation, error) {
	return sched.EvenSplit(jobs, totalCores, nil)
}

// NewGuardedSophonPolicy returns the decision-engine variant that rejects
// greedy steps which would worsen the predicted epoch time (Ablation A).
func NewGuardedSophonPolicy() Policy { return &policy.Sophon{StepGuard: true} }

// EpochModelFor evaluates the paper's four epoch cost metrics (T_G, T_CC,
// T_CS, T_Net) for a plan.
func EpochModelFor(tr *Trace, plan *Plan, env Env) (EpochModel, error) {
	return policy.ModelFor(tr, plan, env)
}

// NewUniformPlan assigns every sample the same offloaded prefix length.
func NewUniformPlan(name string, n, split int) (*Plan, error) {
	return policy.NewUniformPlan(name, n, split)
}

// OffloadCandidates evaluates every sample's best offload option (stage,
// bytes saved, CPU cost, efficiency) — the quantities behind Figure 1c.
func OffloadCandidates(tr *Trace) []policy.Candidate {
	return policy.Candidates(tr)
}

// PredictedEpoch is a convenience for EpochModel.Predicted.
func PredictedEpoch(m EpochModel) time.Duration { return m.Predicted() }

// Preprocessing pipelines beyond the paper's training pipeline.

// PreprocessingPipeline is an ordered, split-executable op sequence.
type PreprocessingPipeline = pipeline.Pipeline

// StandardPipeline is the paper's five-op training pipeline: Decode →
// RandomResizedCrop(crop) → RandomHorizontalFlip → ToTensor → Normalize.
func StandardPipeline(crop int) *PreprocessingPipeline {
	return pipeline.Standard(pipeline.StandardOptions{CropSize: crop, FlipP: -1})
}

// ValidationPipeline is the deterministic eval-time pipeline: Decode →
// Resize(shorter) → CenterCrop(crop) → ToTensor → Normalize.
func ValidationPipeline(resize, crop int) (*PreprocessingPipeline, error) {
	return pipeline.Validation(resize, crop)
}

// AugmentedPipeline adds ColorJitter and RandomGrayscale to the training
// pipeline.
func AugmentedPipeline(crop int, jitter, grayscaleP float64) (*PreprocessingPipeline, error) {
	return pipeline.Augmented(crop, jitter, grayscaleP)
}

// Local caching — the alternative the paper's introduction contrasts
// against (limited by local capacity; SOPHON needs none).

// Cache is a byte-capacity cache over sample IDs.
type Cache = cache.Cache

// CacheStats snapshots a cache's counters.
type CacheStats = cache.Stats

// NewLRUCache builds a least-recently-used cache with the given byte
// capacity. LRU collapses to ~zero hits on repeated full-dataset scans —
// part of why caching alone doesn't solve the remote-I/O bottleneck.
func NewLRUCache(capacityBytes int64) (Cache, error) { return cache.NewLRU(capacityBytes) }

// NewNoEvictCache builds the admit-until-full cache DL systems use, which
// sustains a capacity/dataset hit fraction across epochs.
func NewNoEvictCache(capacityBytes int64) (Cache, error) { return cache.NewNoEvict(capacityBytes) }

// NewCachingFetcher wraps a storage client so raw fetches hit the local
// cache first.
func NewCachingFetcher(client *storage.Client, c Cache) *cache.FetchingCache {
	return cache.NewFetchingCache(client, c)
}

// Direct access to the multiplexed transport for callers composing their
// own stacks on top of a cluster.

// StorageClientOptions configures a pipelined storage session: job ID,
// per-request timeout, and the in-flight request cap.
type StorageClientOptions = storage.ClientOptions

// DialStorage opens a multiplexed storage session with explicit options.
// All requests on the returned client pipeline over one connection and
// responses are demultiplexed by request ID.
func DialStorage(addr string, opts StorageClientOptions) (*storage.Client, error) {
	return storage.DialWithOptions(addr, opts)
}

// ApplyCacheToTrace folds a steady-state local cache of capacityBytes into
// a trace copy; plans computed over the result automatically compose
// SOPHON with caching.
func ApplyCacheToTrace(tr *Trace, capacityBytes int64, seed uint64) (*Trace, int) {
	return cache.ApplyToTrace(tr, capacityBytes, seed)
}
