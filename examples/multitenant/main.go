// Multi-tenant fleet: three training jobs share one storage tier through
// the fleet coordinator. Two tenants train on the SAME dataset and share
// offloaded artifacts through the cross-job cache; a third tenant arrives
// mid-run and the whole fleet replans — every tenant's plan feed publishes
// a new generation with shrunken grants. The example trains real epochs
// over sockets and prints the cache's per-tenant accounting.
package main

import (
	"fmt"
	"log"

	sophon "repro"
)

const (
	samples   = 400
	shareKey  = 42 // dataset share key = every group tenant's storage job ID
	linkMbps  = 300
	fleetCPUs = 6
)

func main() {
	// One storage tier, bandwidth-shaped, with a shared preprocessing-core
	// budget the coordinator will divide among tenants.
	cluster, err := sophon.StartCluster(sophon.ClusterConfig{
		DatasetName:   "fleet-demo",
		NumSamples:    samples,
		Seed:          7,
		MinDim:        64,
		MaxDim:        200,
		CropSize:      64,
		StorageCores:  fleetCPUs,
		BandwidthMbps: linkMbps,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// The fleet coordinator owns the tier's budgets: per-shard cores and
	// link bandwidth, divided weighted-fair across admitted tenants.
	coord, err := sophon.NewFleetCoordinator(sophon.FleetCoordinatorConfig{
		Cores:     fleetCPUs,
		Bandwidth: sophon.Mbps(linkMbps),
	})
	if err != nil {
		log.Fatal(err)
	}

	env := sophon.Env{
		Bandwidth:       sophon.Mbps(linkMbps), // overridden by the grant
		ComputeCores:    8,
		StorageSlowdown: 1,
		GPU:             sophon.AlexNet,
	}
	trace := func(seed uint64) *sophon.Trace {
		tr, err := sophon.GenerateTrace(sophon.OpenImagesProfile(samples), seed)
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}

	// Admit the first two tenants: same dataset (share key 42), so their
	// offloaded artifacts are interchangeable.
	provA, err := coord.Admit(sophon.FleetTenant{
		Name: "vision-team-a", Trace: trace(1), Env: env, Dataset: shareKey,
	})
	if err != nil {
		log.Fatal(err)
	}
	provB, err := coord.Admit(sophon.FleetTenant{
		Name: "vision-team-b", Trace: trace(1), Env: env, Dataset: shareKey,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet generation %d: 2 tenants admitted\n", coord.Generation())
	printGrants(coord)

	// The cross-job artifact cache every tenant of the share group stacks
	// over its storage session.
	shared, err := sophon.NewSharedArtifactCache(256 << 20)
	if err != nil {
		log.Fatal(err)
	}
	newTrainer := func(name string, jobID uint64, sharedCache *sophon.SharedArtifactCache) *sophon.Trainer {
		t, err := cluster.NewTrainer(sophon.TrainerOptions{
			Workers:     4,
			BatchSize:   32,
			JobID:       jobID,
			SharedCache: sharedCache,
			TenantName:  name,
		})
		if err != nil {
			log.Fatal(err)
		}
		return t
	}

	// Epoch 1: tenant a trains first (cold cache), tenant b second — its
	// overlap with a is served from the shared cache at zero wire bytes.
	// Coordinated prep: both group tenants dial with the GROUP's share key.
	trainerA := newTrainer("vision-team-a", shareKey, shared)
	trainerB := newTrainer("vision-team-b", shareKey, shared)
	defer trainerA.Close()
	defer trainerB.Close()

	repA, err := trainerA.TrainEpochSnapshot(1, provA.Current())
	if err != nil {
		log.Fatal(err)
	}
	repB, err := trainerB.TrainEpochSnapshot(1, provB.Current())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nepoch 1 (plan generation %d):\n", provA.Current().Version)
	fmt.Printf("  %-15s %6.2fs  %8.1f MB fetched\n", "vision-team-a", repA.Duration.Seconds(), float64(repA.BytesFetched)/1e6)
	fmt.Printf("  %-15s %6.2fs  %8.1f MB fetched\n", "vision-team-b", repB.Duration.Seconds(), float64(repB.BytesFetched)/1e6)

	// A third tenant arrives mid-run. Admission replans the fleet: both
	// existing feeds publish a higher generation with tighter grants.
	subA := provA.Subscribe()
	provC, err := coord.Admit(sophon.FleetTenant{
		Name: "imagenet-job", Trace: trace(3), Env: env,
	})
	if err != nil {
		log.Fatal(err)
	}
	replanned := <-subA
	fmt.Printf("\nmid-run arrival: %s → fleet generation %d (reason %q)\n",
		"imagenet-job", replanned.Version, replanned.Reason)
	printGrants(coord)

	// Epoch 2 runs under the replanned generation. The share group's raw
	// artifacts are still warm from epoch 1; augmented cuts are re-fetched
	// once per epoch and shared again between a and b.
	repA2, err := trainerA.TrainEpochSnapshot(2, replanned)
	if err != nil {
		log.Fatal(err)
	}
	repB2, err := trainerB.TrainEpochSnapshot(2, provB.Current())
	if err != nil {
		log.Fatal(err)
	}
	// The newcomer is outside the share group: own job ID, no shared cache.
	trainerC := newTrainer("imagenet-job", 99, nil)
	defer trainerC.Close()
	repC, err := trainerC.TrainEpochSnapshot(2, provC.Current())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nepoch 2 (plan generation %d):\n", replanned.Version)
	fmt.Printf("  %-15s %6.2fs  %8.1f MB fetched\n", "vision-team-a", repA2.Duration.Seconds(), float64(repA2.BytesFetched)/1e6)
	fmt.Printf("  %-15s %6.2fs  %8.1f MB fetched\n", "vision-team-b", repB2.Duration.Seconds(), float64(repB2.BytesFetched)/1e6)
	fmt.Printf("  %-15s %6.2fs  %8.1f MB fetched\n", "imagenet-job", repC.Duration.Seconds(), float64(repC.BytesFetched)/1e6)

	snap := shared.Snapshot()
	fmt.Printf("\ncross-job artifact cache: %d items, %.1f MB resident, hit rate %.0f%%\n",
		snap.Items, float64(snap.Bytes)/1e6, 100*snap.HitRate())
	for _, name := range snap.TenantNames() {
		ts := snap.Tenants[name]
		fmt.Printf("  %-15s %4d hits, %4d misses, %6.1f MB saved off the wire\n",
			name, ts.Hits, ts.Misses, float64(ts.BytesSaved)/1e6)
	}
	if snap.Hits == 0 {
		log.Fatal("expected shared-cache hits between the share group's tenants")
	}

	fmt.Printf("\nfleet history:\n")
	for _, e := range coord.History() {
		fmt.Printf("  %s\n", e)
	}
}

// printGrants lists every tenant's grant in admission order.
func printGrants(coord *sophon.FleetCoordinator) {
	for _, row := range coord.Status().Tenants {
		fmt.Printf("  %-15s %d cores, %5.1f Mbps, predicted %5.1fs\n",
			row.Name, row.Cores, row.BandwidthMBps, row.PredictedSeconds)
	}
}
