// Multi-tenant: the paper's future-work scheduler — three training jobs
// share one storage node's preprocessing cores; the marginal-gain allocator
// re-plans each job with SOPHON at every grant and beats a naive even
// split.
package main

import (
	"fmt"
	"log"

	sophon "repro"
)

func main() {
	env := sophon.Env{
		Bandwidth:       sophon.Mbps(500),
		ComputeCores:    48,
		StorageSlowdown: 1,
		GPU:             sophon.AlexNet,
	}

	mk := func(p sophon.Profile, seed uint64) *sophon.Trace {
		tr, err := sophon.GenerateTrace(p, seed)
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}
	jobs := []sophon.TenantJob{
		{Name: "vision-team-a", Trace: mk(sophon.OpenImagesProfile(5000), 1), Env: env},
		{Name: "vision-team-b", Trace: mk(sophon.OpenImagesProfile(5000), 2), Env: env},
		{Name: "imagenet-job", Trace: mk(sophon.ImageNetProfile(11000), 3), Env: env},
	}

	const totalCores = 8
	smart, err := sophon.AllocateCores(jobs, totalCores)
	if err != nil {
		log.Fatal(err)
	}
	even, err := sophon.EvenSplitCores(jobs, totalCores)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("three jobs share %d storage cores\n\n", totalCores)
	fmt.Printf("%-15s %18s %18s\n", "job", "marginal-gain", "even-split")
	for _, j := range jobs {
		fmt.Printf("%-15s %8.1fs (%d cores) %8.1fs (%d cores)\n",
			j.Name,
			smart.Predicted[j.Name].Seconds(), smart.Cores[j.Name],
			even.Predicted[j.Name].Seconds(), even.Cores[j.Name])
	}
	fmt.Printf("\ntotal predicted epoch time: marginal-gain %.1fs vs even-split %.1fs\n",
		smart.TotalPredicted().Seconds(), even.TotalPredicted().Seconds())
}
