// Fault tolerance: the storage link drops every connection after a byte
// budget (chaos injection), and the trainer's reconnect-and-retry client
// completes training anyway — offloaded fetches are idempotent because
// augmentation randomness depends only on (job, epoch, sample). A local
// no-evict cache on top removes most raw refetches after epoch 1.
package main

import (
	"fmt"
	"log"

	sophon "repro"
)

func main() {
	cluster, err := sophon.StartCluster(sophon.ClusterConfig{
		DatasetName:     "chaos",
		NumSamples:      64,
		Seed:            13,
		MinDim:          128,
		MaxDim:          360,
		CropSize:        64,
		StorageCores:    2,
		BandwidthMbps:   8,       // slow link → I/O-bound → offloading activates
		ChaosConnBudget: 1 << 20, // every connection dies after ~1 MB
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	trainer, err := cluster.NewTrainer(sophon.TrainerOptions{
		Workers:       4,
		BatchSize:     16,
		JobID:         2,
		Shuffle:       true,
		RetryAttempts: 10,
		CacheBytes:    32 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	env := sophon.Env{
		Bandwidth:       sophon.Mbps(8),
		ComputeCores:    4,
		StorageCores:    2,
		StorageSlowdown: 1,
		GPU:             sophon.AlexNet,
	}
	decision, reports, err := trainer.AutoTrain(4, env, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decision: activated=%v, offloading %d/%d samples\n",
		decision.Activated, decision.Plan.OffloadedCount(), trainer.N())
	for _, r := range reports {
		fmt.Printf("epoch %d: %d samples, %.2f MB fetched, %d offloaded (despite 1 MB chaos budget per conn)\n",
			r.Epoch, r.Samples, float64(r.BytesFetched)/1e6, r.Offloaded)
	}
	fmt.Println("training completed over a link that killed every connection after 1 MB")
}
