// Policy comparison: the paper's Figure 3 scenario at the model tier —
// every offloading policy over both dataset profiles with ample storage
// CPUs, reporting epoch time and per-epoch traffic.
package main

import (
	"fmt"
	"log"

	sophon "repro"
)

func main() {
	env := sophon.Env{
		Bandwidth:       sophon.Mbps(500),
		ComputeCores:    48,
		StorageCores:    48,
		StorageSlowdown: 1,
		GPU:             sophon.AlexNet,
	}

	for _, spec := range []struct {
		name    string
		profile sophon.Profile
	}{
		{"OpenImages 12GB subset", sophon.OpenImagesProfile(0)},
		{"ImageNet 11GB subset", sophon.ImageNetProfile(0)},
	} {
		trace, err := sophon.GenerateTrace(spec.profile, 2024)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %d samples, %.2f GB raw\n",
			spec.name, trace.N(), float64(trace.TotalRawBytes())/1e9)
		fmt.Printf("  %-12s %10s %14s %12s\n", "policy", "epoch", "traffic", "offloaded")

		var noOffTraffic float64
		for _, p := range sophon.AllPolicies() {
			res, plan, err := sophon.SimulatePolicy(p, trace, env)
			if err != nil {
				log.Fatal(err)
			}
			traffic := float64(res.TrafficBytes) / 1e9
			if p.Name() == "No-Off" {
				noOffTraffic = traffic
			}
			fmt.Printf("  %-12s %9.1fs %10.2f GB %12d  (%.2fx No-Off traffic)\n",
				p.Name(), res.EpochTime.Seconds(), traffic,
				plan.OffloadedCount(), traffic/noOffTraffic)
		}
		fmt.Println()
	}
}
