// Quickstart: boot an in-process two-node cluster, run SOPHON's two-stage
// profiler, plan, and train a few epochs with selective offloading — the
// whole Figure 2 flow in ~40 lines of API calls.
package main

import (
	"fmt"
	"log"

	sophon "repro"
)

func main() {
	// "Storage node": in-memory object store + near-storage executor with
	// 2 preprocessing cores, serving 48 synthetic photos over loopback TCP.
	cluster, err := sophon.StartCluster(sophon.ClusterConfig{
		DatasetName:  "quickstart",
		NumSamples:   48,
		Seed:         42,
		MinDim:       64,
		MaxDim:       256,
		CropSize:     96,
		StorageCores: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// "Compute node": loader workers + simulated GPU.
	trainer, err := cluster.NewTrainer(sophon.TrainerOptions{
		Workers:   4,
		BatchSize: 16,
		JobID:     1,
		Shuffle:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	// Stage 1 (throughput probes) + stage 2 (profile during epoch 1).
	trace, stage1, epoch1, err := trainer.Profile(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1: gpu=%.0f io=%.0f cpu=%.0f samples/s → %s\n",
		stage1.GPUThroughput, stage1.IOThroughput, stage1.CPUThroughput, stage1.Bottleneck())
	fmt.Printf("epoch 1 (profiling): %d samples, %.2f MB fetched, %v\n",
		epoch1.Samples, float64(epoch1.BytesFetched)/1e6, epoch1.Duration.Round(1e6))

	// Decide: plan against the environment we intend to train in. The
	// tiny link makes this quickstart I/O-bound, like the paper's setup.
	env := sophon.Env{
		Bandwidth:       sophon.Mbps(4),
		ComputeCores:    4,
		StorageCores:    2,
		StorageSlowdown: 1,
		GPU:             sophon.AlexNet,
	}
	decision, err := sophon.Decide(trace, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decision: activated=%v, offloading %d/%d samples, predicted %.2fx speedup\n",
		decision.Activated, decision.Plan.OffloadedCount(), trace.N(), decision.PredictedSpeedup())

	// Train the remaining epochs under the plan.
	for epoch := uint64(2); epoch <= 4; epoch++ {
		report, err := trainer.TrainEpoch(epoch, decision.Plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %d samples, %.2f MB fetched, %d offloaded, gpu util %.1f%%\n",
			epoch, report.Samples, float64(report.BytesFetched)/1e6,
			report.Offloaded, 100*report.GPUUtilization)
	}
	fmt.Printf("storage node burned %.2fs of CPU on offloaded prefixes\n",
		float64(cluster.ServerCPUNanos())/1e9)
}
