// Selective compression: the paper's first future-work extension — on top
// of a SOPHON offload plan, compress the transfers whose bytes-saved per
// CPU-second justify it, and compare traffic and epoch time.
package main

import (
	"fmt"
	"log"

	sophon "repro"
)

func main() {
	trace, err := sophon.GenerateTrace(sophon.OpenImagesProfile(0), 2024)
	if err != nil {
		log.Fatal(err)
	}
	env := sophon.Env{
		Bandwidth:       sophon.Mbps(500),
		ComputeCores:    48,
		StorageCores:    48,
		StorageSlowdown: 1,
		GPU:             sophon.AlexNet,
	}

	decision, err := sophon.Decide(trace, env)
	if err != nil {
		log.Fatal(err)
	}
	base, err := sophon.SimulateEpoch(trace, decision.Plan, env)
	if err != nil {
		log.Fatal(err)
	}

	model := sophon.DefaultCompressionModel()
	sel, err := sophon.SelectCompression(trace, decision.Plan, env, model)
	if err != nil {
		log.Fatal(err)
	}
	adjusted, err := sophon.ApplyCompression(trace, decision.Plan, sel, model)
	if err != nil {
		log.Fatal(err)
	}
	compressed, err := sophon.SimulateEpoch(adjusted, decision.Plan, env)
	if err != nil {
		log.Fatal(err)
	}

	noOff, _, err := sophon.SimulatePolicy(sophon.NoOffPolicy(), trace, env)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("OpenImages @ 500 Mbps, 48 storage cores\n\n")
	fmt.Printf("%-18s %10s %14s\n", "variant", "epoch", "traffic")
	print := func(name string, epoch float64, traffic int64) {
		fmt.Printf("%-18s %9.1fs %10.2f GB (%.2fx No-Off)\n",
			name, epoch, float64(traffic)/1e9,
			float64(traffic)/float64(noOff.TrafficBytes))
	}
	print("No-Off", noOff.EpochTime.Seconds(), noOff.TrafficBytes)
	print("SOPHON", base.EpochTime.Seconds(), base.TrafficBytes)
	print("SOPHON+compress", compressed.EpochTime.Seconds(), compressed.TrafficBytes)
	fmt.Printf("\ncompressed transfers: %d of %d samples\n", sel.Count(), trace.N())
}
