// Limited CPU: the paper's Figure 4 scenario — sweep the storage node's
// preprocessing core budget on OpenImages and watch SOPHON balance traffic
// reduction against storage-CPU overhead, including the Resize-Off
// crossover at low core counts and the diminishing returns of extra cores.
package main

import (
	"fmt"
	"log"

	sophon "repro"
)

func main() {
	trace, err := sophon.GenerateTrace(sophon.OpenImagesProfile(0), 2024)
	if err != nil {
		log.Fatal(err)
	}
	cores := []int{0, 1, 2, 3, 4, 5, 8}

	fmt.Printf("OpenImages, 500 Mbps link, AlexNet — epoch seconds by storage cores\n\n")
	fmt.Printf("%-12s", "policy")
	for _, c := range cores {
		fmt.Printf(" %7dc", c)
	}
	fmt.Println()

	for _, p := range sophon.AllPolicies() {
		fmt.Printf("%-12s", p.Name())
		for _, c := range cores {
			env := sophon.Env{
				Bandwidth:       sophon.Mbps(500),
				ComputeCores:    48,
				StorageCores:    c,
				StorageSlowdown: 1,
				GPU:             sophon.AlexNet,
			}
			res, _, err := sophon.SimulatePolicy(p, trace, env)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %7.1fs", res.EpochTime.Seconds())
		}
		fmt.Println()
	}

	// Diminishing returns, as in the paper's 0→1 (−22 s) vs 4→5 (−9 s).
	run := func(c int) float64 {
		env := sophon.Env{Bandwidth: sophon.Mbps(500), ComputeCores: 48,
			StorageCores: c, StorageSlowdown: 1, GPU: sophon.AlexNet}
		res, _, err := sophon.SimulatePolicy(sophon.NewSophonPolicy(), trace, env)
		if err != nil {
			log.Fatal(err)
		}
		return res.EpochTime.Seconds()
	}
	fmt.Printf("\nSOPHON diminishing returns: 0→1 core saves %.1fs, 4→5 cores saves %.1fs\n",
		run(0)-run(1), run(4)-run(5))
}
