// Sharded walkthrough: boot a three-shard in-process storage tier, train
// over the fan-out client, then crash one shard mid-run and watch a
// degraded-mode epoch complete anyway — every healthy shard's samples still
// flow, and the report counts exactly the dead shard's samples as failed.
//
// Run with:
//
//	go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/pipeline"
	"repro/internal/storage"
	"repro/internal/trainsim"
)

func main() {
	const (
		samples = 96
		shards  = 3
	)

	// The full dataset, materialized once; Launch partitions it so each
	// shard server owns only the samples the rendezvous hash places on it.
	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: "sharded-demo", N: samples, Seed: 11, MinDim: 64, MaxDim: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	store, err := storage.FromImageSet(set)
	if err != nil {
		log.Fatal(err)
	}
	pipe := pipeline.Standard(pipeline.StandardOptions{CropSize: 96, FlipP: -1})

	tier, err := cluster.Launch(cluster.Config{
		Shards:        shards,
		Store:         store,
		Pipeline:      pipe,
		CoresPerShard: 2,
		LinkMbps:      500, // one 500 Mbps link PER SHARD — the tier's point
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tier.Close()
	for s := 0; s < shards; s++ {
		fmt.Printf("shard %d owns %d/%d samples\n",
			s, len(tier.ShardMap().Owned(samples, s)), samples)
	}

	// A second fan-out client just for observability: per-shard stats off
	// the same sessions. Dialed now, while every shard is reachable.
	statsClient, err := tier.NewShardedClient(storage.ClientOptions{JobID: 1}, 1, 0, true)
	if err != nil {
		log.Fatal(err)
	}
	defer statsClient.Close()

	// The trainer sees ONE storage client; underneath, batches partition by
	// shard and fan out concurrently over one session per shard.
	// DegradedMode makes a dead shard cost only its own samples.
	trainer, err := trainsim.New(trainsim.Config{
		DialClient: func() (trainsim.StorageClient, error) {
			return tier.NewShardedClient(storage.ClientOptions{JobID: 1},
				2, 50*time.Millisecond, true)
		},
		Workers:        4,
		Pipeline:       pipe,
		GPU:            gpu.AlexNet,
		BatchSize:      16,
		JobID:          1,
		Shuffle:        true,
		FetchBatchSize: 16,
		DegradedMode:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	// Epoch 1: every shard healthy.
	report, err := trainer.RunEpoch(1, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch 1 (all shards up): %d samples, %d failed, %.2f MB fetched\n",
		report.Samples, report.Failed, float64(report.BytesFetched)/1e6)

	// Crash shard 2 — listener and server both go away, as a storage-node
	// failure would take them.
	const dead = 2
	if err := tier.KillShard(dead); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshard %d killed; training on\n", dead)

	// Epoch 2 completes in degraded mode: only the dead shard's samples are
	// reported failed, everything else trains normally.
	report, err = trainer.RunEpoch(2, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch 2 (degraded): %d samples trained, %d failed (shard %d owned %d)\n",
		report.Samples, report.Failed, dead, len(tier.ShardMap().Owned(samples, dead)))

	// Per-shard stats straight off the fan-out client: the dead shard
	// reports its error, the healthy ones their counters.
	fmt.Println()
	for _, ss := range statsClient.ShardStats(context.Background()) {
		if ss.Err != nil {
			fmt.Printf("shard %d: unreachable\n", ss.Shard)
			continue
		}
		fmt.Printf("shard %d: served %d samples, sent %.2f MB, burned %.2fs CPU\n",
			ss.Shard, ss.Stats.SamplesServed,
			float64(ss.Stats.BytesSent)/1e6, float64(ss.Stats.ServerCPUNanos)/1e9)
	}
}
