// Adaptive walkthrough: profile and train against a 500 Mbps link, then
// reshape it to 250 Mbps mid-run and watch the control plane notice — the
// between-epoch bandwidth probe drifts past its gate, the controller replans
// at the next epoch boundary, and the new plan version is stamped on every
// fetch so the storage server sees the transition too.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	sophon "repro"
)

func main() {
	// "Storage node": 2 preprocessing cores behind a 500 Mbps shaped link —
	// scarce enough on both axes that the best plan depends on the link rate.
	cluster, err := sophon.StartCluster(sophon.ClusterConfig{
		DatasetName:   "adaptive-demo",
		NumSamples:    48,
		Seed:          3,
		MinDim:        192,
		MaxDim:        448,
		CropSize:      96,
		StorageCores:  2,
		BandwidthMbps: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// "Compute node". No local cache: the bandwidth probe must measure the
	// link, and a cache would answer the probe's fetches locally.
	trainer, err := cluster.NewTrainer(sophon.TrainerOptions{
		Workers:        4,
		BatchSize:      8,
		JobID:          1,
		FetchBatchSize: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	// Epoch 1 is the paper's profiling epoch: no offloading, per-sample
	// metrics collected into a trace the controller will replan over.
	trace, _, _, err := trainer.Profile(2)
	if err != nil {
		log.Fatal(err)
	}

	env := sophon.Env{
		Bandwidth:       sophon.Mbps(500),
		ComputeCores:    4,
		StorageCores:    2,
		StorageSlowdown: 1,
		GPU:             sophon.AlexNet,
	}
	// The controller computes plan v1 against the profiled environment and
	// replans whenever a measurement drifts ≥35% from what the live plan
	// assumes (hysteresis 1: a single drifted epoch is enough).
	ctrl, err := sophon.NewController(sophon.ControllerConfig{
		Trace: trace,
		Env:   env,
		Drift: sophon.DriftConfig{Alpha: 1, RelThreshold: 0.35, Hysteresis: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	const epochs = 5
	for e := uint64(2); e <= epochs; e++ {
		// Halve the link before epoch 4 — a live network degradation.
		if e == 4 {
			if err := cluster.SetBandwidth(250); err != nil {
				log.Fatal(err)
			}
			fmt.Println("\n*** link reshaped 500 → 250 Mbps ***")
		}

		// Train under the controller's current snapshot: every fetch this
		// epoch is stamped with the snapshot's version.
		snap := ctrl.Current()
		report, err := trainer.TrainEpochSnapshot(e, snap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d under plan v%d: %d/%d offloaded, %.2f MB fetched\n",
			e, report.PlanVersion, report.Offloaded, report.Samples,
			float64(report.BytesFetched)/1e6)

		// Between epochs, re-measure the link with a serial fetch probe and
		// let the controller decide whether the plan still fits.
		bw, err := trainer.MeasureBandwidth(96)
		if err != nil {
			log.Fatal(err)
		}
		_, drifts, err := ctrl.ObserveEpoch(sophon.EpochSample{Epoch: e, Bandwidth: bw})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  probe: %.1f MB/s", bw/1e6)
		if len(drifts) > 0 {
			fmt.Printf("  → drift, replanning for epoch %d", e+1)
		}
		fmt.Println()
	}

	// The replan history names every transition; the server-side ratchet
	// confirms the version change reached the wire.
	fmt.Println("\nreplan history:")
	for _, ev := range ctrl.History() {
		fmt.Printf("  %s\n", ev)
	}
	fmt.Printf("highest plan version the server observed: v%d\n", cluster.ServerPlanVersion())
}
